#include "adversary/identification.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace raptee::adversary {

IdentificationAttack::IdentificationAttack(std::function<bool(NodeId)> is_byzantine,
                                           std::function<bool(NodeId)> is_trusted)
    : is_byzantine_(std::move(is_byzantine)), is_trusted_(std::move(is_trusted)) {
  RAPTEE_REQUIRE(is_byzantine_ && is_trusted_, "identification attack needs oracles");
}

void IdentificationAttack::on_pull_reply_delivered(Round /*round*/, NodeId from,
                                                   NodeId to,
                                                   const std::vector<NodeId>& view) {
  // The adversary only sees replies its own members received, and only
  // cares about non-Byzantine responders.
  if (!is_byzantine_(to) || is_byzantine_(from)) return;
  std::size_t byz = 0;
  for (NodeId id : view) {
    if (is_byzantine_(id)) ++byz;
  }
  const double share =
      view.empty() ? 0.0 : static_cast<double>(byz) / static_cast<double>(view.size());
  Observation& obs = ledger_[from.value];
  obs.share_sum += share;
  ++obs.count;
}

IdentificationResult IdentificationAttack::evaluate(Round now, double threshold) const {
  IdentificationResult result;
  result.evaluated_at = now;
  if (ledger_.empty()) return result;

  // Traverse the ledger in sorted key order: the per-node shares are
  // accumulated in floating point, so the summation order reaches the
  // precision/recall/f1 numbers exported into bench JSON — hash-table
  // order must never decide result bytes.
  std::vector<std::uint32_t> ids;
  ids.reserve(ledger_.size());
  // raptee-lint: allow(no-unordered-iteration) key collection only; sorted before any order-sensitive use
  for (const auto& [id, obs] : ledger_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  // Average Byzantine share across all observed honest nodes.
  double total = 0.0;
  for (const std::uint32_t id : ids) {
    const Observation& obs = ledger_.at(id);
    total += obs.share_sum / static_cast<double>(obs.count);
  }
  const double average = total / static_cast<double>(ledger_.size());

  std::size_t flagged = 0, true_positives = 0, trusted_observed = 0;
  for (const std::uint32_t id : ids) {
    const Observation& obs = ledger_.at(id);
    const NodeId node{id};
    const bool truth = is_trusted_(node);
    if (truth) ++trusted_observed;
    const double node_share = obs.share_sum / static_cast<double>(obs.count);
    if (average - node_share > threshold) {
      ++flagged;
      if (truth) ++true_positives;
    }
  }

  result.flagged = flagged;
  result.true_positives = true_positives;
  result.trusted_total = trusted_observed;
  result.precision = flagged ? static_cast<double>(true_positives) /
                                   static_cast<double>(flagged)
                             : 0.0;
  result.recall = trusted_observed ? static_cast<double>(true_positives) /
                                         static_cast<double>(trusted_observed)
                                   : 0.0;
  result.f1 = (result.precision + result.recall) > 0.0
                  ? 2.0 * result.precision * result.recall /
                        (result.precision + result.recall)
                  : 0.0;
  return result;
}

}  // namespace raptee::adversary
