#include "adversary/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "adversary/byzantine.hpp"
#include "common/assert.hpp"

namespace raptee::adversary {

// ---------------------------------------------------------------- defaults

void IStrategy::plan_pulls(Coordinator& coord, std::vector<NodeId>& out) {
  // Camouflaged pulls, uniform over the correct population — blending in
  // while harvesting the pull-answer observations that feed §VI-A.
  out.clear();
  const std::vector<NodeId>& victims = coord.victims();
  if (victims.empty()) return;
  const std::size_t fanout = coord.config().pull_fanout;
  out.reserve(fanout);
  for (std::size_t i = 0; i < fanout; ++i) {
    out.push_back(victims[static_cast<std::size_t>(coord.rng().below(victims.size()))]);
  }
}

void IStrategy::answer_view(Round /*r*/, Coordinator& coord, std::size_t k,
                            std::vector<NodeId>& out) {
  coord.faulty_view_into(k, out);
}

bool IStrategy::attach_bogus_swap(Round /*r*/, const Coordinator& coord) const {
  return coord.config().attach_bogus_swap_offer;
}

namespace {

// ---------------------------------------------------------------- balanced

/// The Brahms-optimal balanced attack (paper §III-B). Push budget laid out
/// round-robin over a shuffled victim list, so per-victim push counts
/// differ by at most one — the spread the Brahms paper proves optimal for
/// the adversary. Draw-for-draw identical to the pre-strategy Coordinator.
class BalancedStrategy : public IStrategy {
 public:
  explicit BalancedStrategy(AttackSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] std::string_view name() const override { return "balanced"; }

  void plan_pushes(Round /*r*/, Coordinator& coord,
                   std::vector<NodeId>& schedule) override {
    const std::vector<NodeId>& pool =
        coord.targeted().empty() ? coord.victims() : coord.targeted();
    schedule.clear();
    if (pool.empty() || coord.config().push_budget_per_member == 0) return;
    const std::size_t total =
        coord.members().size() * coord.config().push_budget_per_member;
    std::vector<NodeId>& shuffled = coord.pool_scratch();
    shuffled.assign(pool.begin(), pool.end());
    coord.rng().shuffle(shuffled);
    schedule.reserve(total);
    for (std::size_t j = 0; j < total; ++j) schedule.push_back(shuffled[j % shuffled.size()]);
  }

 protected:
  AttackSpec spec_;
};

// ----------------------------------------------------------------- eclipse

/// Targeted/eclipse attacker (BASALT's evaluation adversary): the whole
/// push budget focuses on the targeted victims, throttled per victim so
/// the flood never trips Brahms' push-rate detection, and pulls harvest
/// the victims' increasingly polluted views.
class EclipseStrategy : public BalancedStrategy {
 public:
  using BalancedStrategy::BalancedStrategy;

  [[nodiscard]] std::string_view name() const override { return "eclipse"; }
  [[nodiscard]] bool wants_victims() const override { return true; }

  void plan_pushes(Round /*r*/, Coordinator& coord,
                   std::vector<NodeId>& schedule) override {
    const std::vector<NodeId>& pool =
        coord.targeted().empty() ? coord.victims() : coord.targeted();
    schedule.clear();
    const std::size_t budget = coord.config().push_budget_per_member;
    if (pool.empty() || budget == 0) return;
    const std::size_t total = coord.members().size() * budget;
    // Per-victim cap: flooding past the honest α·l1 background rate makes
    // the victim block its view update entirely (Brahms defence ii), which
    // would freeze — not capture — its view.
    const auto cap = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::lround(spec_.push_cap_fraction * static_cast<double>(budget))));
    std::vector<NodeId>& shuffled = coord.pool_scratch();
    shuffled.assign(pool.begin(), pool.end());
    coord.rng().shuffle(shuffled);
    const std::size_t focused = std::min(total, cap * shuffled.size());
    schedule.reserve(total);
    for (std::size_t j = 0; j < focused; ++j) {
      schedule.push_back(shuffled[j % shuffled.size()]);
    }
    // The cap leaves budget on the table; spend it as balanced background
    // over the whole correct population. That is the stronger combined
    // attack: the victims' honest neighbours get polluted too, so the
    // victims' own camouflage pulls return dirtier views.
    if (focused < total && !coord.victims().empty()) {
      std::vector<NodeId>& background = coord.background_scratch();
      background.assign(coord.victims().begin(), coord.victims().end());
      coord.rng().shuffle(background);
      for (std::size_t j = 0; focused + j < total; ++j) {
        schedule.push_back(background[j % background.size()]);
      }
    }
  }

  void plan_pulls(Coordinator& coord, std::vector<NodeId>& out) override {
    // Pull the victims: every answered pull hands the adversary the
    // victim's current view and costs the victim an exchange slot.
    out.clear();
    const std::vector<NodeId>& pool =
        coord.targeted().empty() ? coord.victims() : coord.targeted();
    if (pool.empty()) return;
    const std::size_t fanout = coord.config().pull_fanout;
    out.reserve(fanout);
    for (std::size_t i = 0; i < fanout; ++i) {
      out.push_back(pool[static_cast<std::size_t>(coord.rng().below(pool.size()))]);
    }
  }
};

// ----------------------------------------------------------- delay_eclipse

/// Eclipse assisted by link delay (event-driven time only): on top of the
/// focused push budget, every honest→victim link gains spec_.delay_ms of
/// one-way latency, so the victims' honest refresh lands past the round
/// deadline and is dropped — the adversary's poison becomes the freshest
/// input the victims see. In round mode (no scheduler) the delay hook is
/// never consulted and the strategy degrades to plain eclipse.
class DelayEclipseStrategy final : public EclipseStrategy {
 public:
  using EclipseStrategy::EclipseStrategy;

  [[nodiscard]] std::string_view name() const override { return "delay_eclipse"; }

  [[nodiscard]] std::uint64_t extra_delay_us(Round /*r*/, NodeId from, NodeId to,
                                             const Coordinator& coord) const override {
    // Delay only honest→victim traffic: the adversary's own messages (and
    // everything not aimed at a victim) travel at network speed, so the
    // poison always outruns the honest refresh it displaces.
    if (coord.is_member(from)) return 0;
    const std::vector<NodeId>& pool =
        coord.targeted().empty() ? coord.victims() : coord.targeted();
    for (const NodeId victim : pool) {
      if (victim == to) return spec_.delay_ms * 1000;
    }
    return 0;
  }
};

// ------------------------------------------------------- partition_eclipse

/// Eclipse concentrated in an absolute round window, built to exploit a
/// network partition: while the victims' region is severed from honest
/// refresh the focused capture runs at full budget; before and after, the
/// strategy camouflages (no pushes, honest-looking pull answers) so
/// window-smoothed statistics see nothing until the heal reveals an
/// already-captured view. until == 0 means always-on (plain eclipse).
class PartitionEclipseStrategy final : public EclipseStrategy {
 public:
  using EclipseStrategy::EclipseStrategy;

  [[nodiscard]] std::string_view name() const override { return "partition_eclipse"; }

  [[nodiscard]] bool active(Round r) const override {
    if (spec_.window_until == 0) return true;
    return r >= spec_.window_from && r < spec_.window_until;
  }

  void plan_pushes(Round r, Coordinator& coord,
                   std::vector<NodeId>& schedule) override {
    if (!active(r)) {
      schedule.clear();
      return;
    }
    EclipseStrategy::plan_pushes(r, coord, schedule);
  }

  void answer_view(Round r, Coordinator& coord, std::size_t k,
                   std::vector<NodeId>& out) override {
    if (active(r)) {
      coord.faulty_view_into(k, out);
      return;
    }
    // Outside the window: advertise correct IDs, exactly like a dormant
    // oscillating attacker.
    out.clear();
    const std::vector<NodeId>& victims = coord.victims();
    if (victims.empty()) {
      coord.faulty_view_into(k, out);
      return;
    }
    out.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      out.push_back(victims[static_cast<std::size_t>(coord.rng().below(victims.size()))]);
    }
  }
};

// ------------------------------------------------------------- oscillating

/// BASALT's adaptive adversary: attacks for on_rounds, then camouflages for
/// off_rounds. Dormant rounds push nothing and answer pulls with views of
/// correct IDs, so window-smoothed eviction/identification statistics decay
/// between bursts.
class OscillatingStrategy final : public BalancedStrategy {
 public:
  using BalancedStrategy::BalancedStrategy;

  [[nodiscard]] std::string_view name() const override { return "oscillating"; }

  [[nodiscard]] bool active(Round r) const override {
    const Round period = spec_.on_rounds + spec_.off_rounds;
    if (period == 0) return true;
    return (r % period) < spec_.on_rounds;
  }

  void plan_pushes(Round r, Coordinator& coord,
                   std::vector<NodeId>& schedule) override {
    if (!active(r)) {
      schedule.clear();
      return;
    }
    BalancedStrategy::plan_pushes(r, coord, schedule);
  }

  void answer_view(Round r, Coordinator& coord, std::size_t k,
                   std::vector<NodeId>& out) override {
    if (active(r)) {
      coord.faulty_view_into(k, out);
      return;
    }
    // Off duty: advertise correct IDs — indistinguishable from an honest
    // answer, and it repairs nothing the burst already poisoned.
    out.clear();
    const std::vector<NodeId>& victims = coord.victims();
    if (victims.empty()) {
      coord.faulty_view_into(k, out);
      return;
    }
    out.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      out.push_back(victims[static_cast<std::size_t>(coord.rng().below(victims.size()))]);
    }
  }

  [[nodiscard]] bool attach_bogus_swap(Round r, const Coordinator& coord) const override {
    return active(r) && coord.config().attach_bogus_swap_offer;
  }
};

// ---------------------------------------------------------------- omission

/// Liveness attacker: contributes nothing (no pushes) and refuses to answer
/// pull requests, burning the initiator's exchange slot for the round. The
/// engine counts every refusal in Counters::legs_suppressed.
class OmissionStrategy final : public IStrategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "omission"; }

  void plan_pushes(Round /*r*/, Coordinator& /*coord*/,
                   std::vector<NodeId>& schedule) override {
    schedule.clear();
  }

  [[nodiscard]] bool answers_pulls(Round /*r*/) const override { return false; }
};

// -------------------------------------------------------------- bogus_swap

/// Balanced attack plus a forged swap offer on every AuthConfirm — probes
/// the trusted-swap authentication defence (honest nodes must reject the
/// offer because the sender cannot prove group membership).
class BogusSwapStrategy final : public BalancedStrategy {
 public:
  using BalancedStrategy::BalancedStrategy;

  [[nodiscard]] std::string_view name() const override { return "bogus_swap"; }

  [[nodiscard]] bool attach_bogus_swap(Round /*r*/,
                                       const Coordinator& /*coord*/) const override {
    return true;
  }
};

}  // namespace

// ---------------------------------------------------------------- registry

struct StrategyRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::pair<std::string, Factory>> entries;
};

StrategyRegistry::StrategyRegistry() : impl_(std::make_shared<Impl>()) {
  add("balanced", "Brahms-optimal balanced attack (paper §III-B); the default",
      [](const AttackSpec& spec) { return std::make_unique<BalancedStrategy>(spec); });
  add("eclipse", "focused push budget + harvesting pulls on a victim subset",
      [](const AttackSpec& spec) { return std::make_unique<EclipseStrategy>(spec); });
  add("oscillating", "on/off duty cycle evading window-smoothed statistics",
      [](const AttackSpec& spec) { return std::make_unique<OscillatingStrategy>(spec); });
  add("omission", "answers no pulls, sends nothing (liveness attacker)",
      [](const AttackSpec&) { return std::make_unique<OmissionStrategy>(); });
  add("bogus_swap", "balanced + forged swap offer on every confirm",
      [](const AttackSpec& spec) { return std::make_unique<BogusSwapStrategy>(spec); });
  add("delay_eclipse",
      "eclipse + delayed honest→victim links (event-driven time)",
      [](const AttackSpec& spec) {
        return std::make_unique<DelayEclipseStrategy>(spec);
      });
  add("partition_eclipse", "eclipse focused into a partition round window",
      [](const AttackSpec& spec) {
        return std::make_unique<PartitionEclipseStrategy>(spec);
      });
}

StrategyRegistry& StrategyRegistry::instance() {
  static StrategyRegistry registry;
  return registry;
}

void StrategyRegistry::add(std::string name, std::string summary, Factory factory) {
  RAPTEE_REQUIRE(!name.empty(), "strategy name must not be empty");
  RAPTEE_REQUIRE(factory != nullptr, "strategy '" << name << "' needs a factory");
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const bool inserted =
      impl_->entries.emplace(std::move(name), std::make_pair(std::move(summary),
                                                             std::move(factory)))
          .second;
  RAPTEE_REQUIRE(inserted, "attack strategy registered twice");
}

bool StrategyRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->entries.count(name) != 0;
}

std::unique_ptr<IStrategy> StrategyRegistry::make(const AttackSpec& spec) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->entries.find(spec.strategy);
    if (it == impl_->entries.end()) {
      std::ostringstream known;
      for (const auto& [name, entry] : impl_->entries) {
        if (known.tellp() > 0) known << ", ";
        known << name;
      }
      RAPTEE_REQUIRE(false, "unknown attack strategy '" << spec.strategy
                                                        << "' (registered: "
                                                        << known.str() << ")");
    }
    factory = it->second.second;
  }
  std::unique_ptr<IStrategy> strategy = factory(spec);
  RAPTEE_REQUIRE(strategy != nullptr,
                 "factory for '" << spec.strategy << "' returned null");
  return strategy;
}

std::vector<StrategyRegistry::Entry> StrategyRegistry::entries() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<Entry> out;
  out.reserve(impl_->entries.size());
  for (const auto& [name, entry] : impl_->entries) out.push_back({name, entry.first});
  return out;  // std::map iteration is already name-sorted
}

std::vector<std::string> StrategyRegistry::names() const {
  std::vector<Entry> all = entries();
  std::vector<std::string> out;
  out.reserve(all.size());
  for (Entry& entry : all) out.push_back(std::move(entry.name));
  return out;
}

std::unique_ptr<IStrategy> make_strategy(const AttackSpec& spec) {
  return StrategyRegistry::instance().make(spec);
}

}  // namespace raptee::adversary
