#include "scenario/spec.hpp"

#include <utility>

namespace raptee::scenario {

ScenarioSpec& ScenarioSpec::population(std::size_t n) {
  base_.n = n;
  return *this;
}
ScenarioSpec& ScenarioSpec::view_size(std::size_t l1) {
  base_.brahms.l1 = l1;
  base_.brahms.l2 = l1;
  return *this;
}
ScenarioSpec& ScenarioSpec::brahms_params(const brahms::Params& params) {
  base_.brahms = params;
  return *this;
}
ScenarioSpec& ScenarioSpec::rounds(Round rounds) {
  base_.rounds = rounds;
  return *this;
}
ScenarioSpec& ScenarioSpec::seed(std::uint64_t seed) {
  base_.seed = seed;
  return *this;
}
ScenarioSpec& ScenarioSpec::adversary(double fraction) {
  base_.byzantine_fraction = fraction;
  return *this;
}
ScenarioSpec& ScenarioSpec::attack(const adversary::AttackSpec& spec) {
  base_.attack = spec;
  return *this;
}
ScenarioSpec& ScenarioSpec::attack(const std::string& strategy_name) {
  base_.attack = adversary::AttackSpec::named(strategy_name);
  return *this;
}
ScenarioSpec& ScenarioSpec::poisoned_extra(double fraction) {
  base_.poisoned_extra_fraction = fraction;
  return *this;
}
ScenarioSpec& ScenarioSpec::identification(double threshold) {
  base_.run_identification = true;
  base_.identification_threshold = threshold;
  return *this;
}
ScenarioSpec& ScenarioSpec::trusted(double fraction) {
  base_.trusted_fraction = fraction;
  use_trusted_share_ = false;
  return *this;
}
ScenarioSpec& ScenarioSpec::trusted_share(double share) {
  trusted_share_ = share;
  use_trusted_share_ = true;
  return *this;
}
ScenarioSpec& ScenarioSpec::trusted_overlay(bool enabled) {
  base_.trusted_overlay = enabled;
  return *this;
}
ScenarioSpec& ScenarioSpec::eviction_pct(int percent) {
  base_.eviction = percent == 0 ? core::EvictionSpec::none()
                                : core::EvictionSpec::fixed(percent / 100.0);
  return *this;
}
ScenarioSpec& ScenarioSpec::eviction(const core::EvictionSpec& spec) {
  base_.eviction = spec;
  return *this;
}
ScenarioSpec& ScenarioSpec::churn(bool enabled) {
  metrics::ChurnSpec spec = metrics::ChurnSpec::steady(0.02);
  spec.enabled = enabled;
  base_.churn = spec;
  return *this;
}
ScenarioSpec& ScenarioSpec::churn(const metrics::ChurnSpec& spec) {
  base_.churn = spec;
  return *this;
}
ScenarioSpec& ScenarioSpec::auth_mode(brahms::AuthMode mode) {
  base_.auth_mode = mode;
  return *this;
}
ScenarioSpec& ScenarioSpec::threads(std::size_t n) {
  base_.engine_threads = n;
  return *this;
}
ScenarioSpec& ScenarioSpec::stability_window(std::size_t rounds) {
  base_.stability_window = rounds;
  return *this;
}
ScenarioSpec& ScenarioSpec::cycle_model(bool enabled) {
  base_.use_cycle_model = enabled;
  return *this;
}
ScenarioSpec& ScenarioSpec::wire_roundtrip(bool enabled) {
  base_.wire_roundtrip = enabled;
  return *this;
}
ScenarioSpec& ScenarioSpec::encrypt_links(bool enabled) {
  base_.encrypt_links = enabled;
  return *this;
}
ScenarioSpec& ScenarioSpec::message_loss(double probability) {
  base_.message_loss = probability;
  return *this;
}
ScenarioSpec& ScenarioSpec::tamper_rate(double probability) {
  base_.tamper_rate = probability;
  return *this;
}
ScenarioSpec& ScenarioSpec::link_sessions(bool enabled) {
  base_.link_sessions = enabled;
  return *this;
}
ScenarioSpec& ScenarioSpec::event(const evt::EventConfig& config) {
  base_.event = config;
  return *this;
}
ScenarioSpec& ScenarioSpec::event_mode(bool enabled) {
  base_.event.enabled = enabled;
  return *this;
}
ScenarioSpec& ScenarioSpec::latency(const evt::LatencySpec& spec) {
  base_.event.enabled = true;
  base_.event.latency = spec;
  if (spec.kind == evt::LatencyKind::kMatrix) {
    base_.event.topology.regions = spec.matrix_regions;
  }
  return *this;
}
ScenarioSpec& ScenarioSpec::latency(const std::string& name) {
  return latency(evt::LatencySpec::named(name));
}
ScenarioSpec& ScenarioSpec::partition(const evt::PartitionSchedule& schedule) {
  base_.event.enabled = true;
  base_.event.partition = schedule;
  if (base_.event.topology.regions < 2 && !schedule.windows.empty()) {
    base_.event.topology.regions = 2;
  }
  return *this;
}
ScenarioSpec& ScenarioSpec::partition(const std::string& name) {
  return partition(evt::PartitionSchedule::named(name, base_.rounds));
}
ScenarioSpec& ScenarioSpec::regions(std::uint32_t regions) {
  base_.event.topology.regions = regions;
  return *this;
}
ScenarioSpec& ScenarioSpec::round_interval_ms(std::uint64_t ms) {
  base_.event.round_interval_us = ms * 1000;
  return *this;
}
ScenarioSpec& ScenarioSpec::label(std::string text) {
  label_ = std::move(text);
  return *this;
}

metrics::ExperimentConfig ScenarioSpec::config() const {
  metrics::ExperimentConfig config = base_;
  if (use_trusted_share_) {
    config.trusted_fraction = trusted_share_ * (1.0 - base_.byzantine_fraction);
  }
  return config;
}

metrics::ExperimentResult ScenarioSpec::run() const {
  return metrics::run_experiment(config());
}

}  // namespace raptee::scenario
