#include "scenario/results.hpp"

#include <iostream>
#include <utility>

namespace raptee::scenario::results {

using metrics::JsonArray;
using metrics::JsonObject;

namespace {

const char* auth_mode_name(brahms::AuthMode mode) {
  switch (mode) {
    case brahms::AuthMode::kFull: return "full";
    case brahms::AuthMode::kFingerprint: return "fingerprint";
    case brahms::AuthMode::kOracle: return "oracle";
  }
  return "unknown";
}

const char* eviction_kind_name(core::EvictionSpec::Kind kind) {
  switch (kind) {
    case core::EvictionSpec::Kind::kNone: return "none";
    case core::EvictionSpec::Kind::kFixed: return "fixed";
    case core::EvictionSpec::Kind::kAdaptive: return "adaptive";
  }
  return "unknown";
}

std::optional<double> round_opt(const std::optional<Round>& round) {
  if (!round) return std::nullopt;
  return static_cast<double>(*round);
}

const char* victim_kind_name(adversary::AttackSpec::VictimKind kind) {
  switch (kind) {
    case adversary::AttackSpec::VictimKind::kAny: return "any";
    case adversary::AttackSpec::VictimKind::kHonest: return "honest";
    case adversary::AttackSpec::VictimKind::kTrusted: return "trusted";
  }
  return "unknown";
}

}  // namespace

std::string to_json(const Knobs& knobs) {
  return JsonObject()
      .field("mode", knobs.full ? "full" : "quick")
      .field("n", knobs.n)
      .field("view", knobs.l1)
      .field("rounds", static_cast<std::uint64_t>(knobs.rounds))
      .field("reps", knobs.reps)
      .field("threads", knobs.threads)
      .field("seed", knobs.seed)
      .field("tamper_pct", knobs.tamper_pct)
      .field("attack", knobs.attack)
      .field("port", static_cast<std::uint64_t>(knobs.port))
      .field("connections", knobs.connections)
      .field("duration_ms", knobs.duration_ms)
      .field("latency", knobs.latency)
      .field("jitter_pct", knobs.jitter_pct)
      .field("partition", knobs.partition)
      .str();
}

std::string to_json(const adversary::AttackSpec& attack) {
  return JsonObject()
      .field("strategy", attack.strategy)
      .field("victim_fraction", attack.victim_fraction)
      .field("victim_count", attack.victim_count)
      .field("victim_kind", victim_kind_name(attack.victim_kind))
      .field("push_cap_fraction", attack.push_cap_fraction)
      .field("isolation_threshold", attack.isolation_threshold)
      .field("on_rounds", static_cast<std::uint64_t>(attack.on_rounds))
      .field("off_rounds", static_cast<std::uint64_t>(attack.off_rounds))
      .field("attach_bogus_swap_offer", attack.attach_bogus_swap_offer)
      .str();
}

std::string to_json(const metrics::AttackOutcome& attack) {
  return JsonObject()
      .field("strategy", attack.strategy)
      .field("victims", attack.victims)
      .field("steady_victim_pollution", attack.steady_victim_pollution)
      .field("rounds_to_isolation", round_opt(attack.rounds_to_isolation))
      .field("legs_suppressed", attack.legs_suppressed)
      .field("rounds_active", attack.rounds_active)
      .field_raw("victim_pollution_series",
                 metrics::json_series(attack.victim_pollution_series))
      .str();
}

std::string to_json(const metrics::EvtOutcome& evt) {
  return JsonObject()
      .field("virtual_ms", evt.virtual_ms)
      .field("legs_late", evt.legs_late)
      .field("partition_drops", evt.partition_drops)
      .field("dissemination_time_ms", evt.dissemination_time_ms)
      .str();
}

std::string to_json(const metrics::ExperimentConfig& config) {
  const JsonObject brahms = JsonObject()
                                .field("l1", config.brahms.l1)
                                .field("l2", config.brahms.l2)
                                .field("alpha", config.brahms.alpha)
                                .field("beta", config.brahms.beta)
                                .field("gamma", config.brahms.gamma);
  const JsonObject eviction = JsonObject()
                                  .field("kind", eviction_kind_name(config.eviction.kind))
                                  .field("fixed_rate", config.eviction.fixed_rate)
                                  .field("lower", config.eviction.lower)
                                  .field("upper", config.eviction.upper)
                                  .field("describe", config.eviction.describe());
  const JsonObject churn =
      JsonObject()
          .field("enabled", config.churn.enabled)
          .field("from", static_cast<std::uint64_t>(config.churn.from))
          .field("until", static_cast<std::uint64_t>(config.churn.until))
          .field("rate_per_round", config.churn.rate_per_round)
          .field("downtime", static_cast<std::uint64_t>(config.churn.downtime))
          .field("rejoin", config.churn.rejoin);
  JsonObject doc;
  doc.field("n", config.n)
      .field("byzantine_fraction", config.byzantine_fraction)
      .field("trusted_fraction", config.trusted_fraction)
      .field("poisoned_extra_fraction", config.poisoned_extra_fraction)
      .field_raw("brahms", brahms.str())
      .field_raw("attack", to_json(config.attack))
      .field_raw("eviction", eviction.str())
      .field_raw("churn", churn.str())
      .field("trusted_overlay", config.trusted_overlay)
      .field("auth_mode", auth_mode_name(config.auth_mode))
      .field("rounds", static_cast<std::uint64_t>(config.rounds))
      .field("seed", config.seed)
      .field("run_identification", config.run_identification)
      .field("identification_threshold", config.identification_threshold)
      .field("stability_window", config.stability_window)
      .field("use_cycle_model", config.use_cycle_model)
      .field("wire_roundtrip", config.wire_roundtrip)
      .field("encrypt_links", config.encrypt_links)
      .field("message_loss", config.message_loss)
      .field("tamper_rate", config.tamper_rate)
      .field("link_sessions", config.link_sessions)
      .field("engine_threads", config.engine_threads);
  // The event block exists only for event-mode configs, so round-mode config
  // JSON stays byte-identical to the pre-evt schema (same omission rule as
  // the result-side attack/evt blocks).
  if (config.event.enabled) {
    doc.field_raw("event",
                  JsonObject()
                      .field("round_interval_us", config.event.round_interval_us)
                      .field("regions", static_cast<std::uint64_t>(
                                            config.event.topology.regions))
                      .field("latency", config.event.latency.describe())
                      .field("partition", config.event.partition.describe())
                      .str());
  }
  return doc.str();
}

std::string to_json(const RunningStats& stats) {
  return JsonObject()
      .field("count", stats.count())
      .field("mean", stats.mean())
      .field("sd", stats.sample_stddev())
      .field("min", stats.min())
      .field("max", stats.max())
      .str();
}

std::string to_json(const adversary::IdentificationResult& result) {
  return JsonObject()
      .field("precision", result.precision)
      .field("recall", result.recall)
      .field("f1", result.f1)
      .field("flagged", result.flagged)
      .field("true_positives", result.true_positives)
      .field("trusted_total", result.trusted_total)
      .field("evaluated_at", static_cast<std::uint64_t>(result.evaluated_at))
      .str();
}

std::string to_json(const metrics::ExperimentResult& result) {
  JsonObject doc;
  doc.field("steady_pollution", result.steady_pollution)
      .field("steady_pollution_honest", result.steady_pollution_honest)
      .field("steady_pollution_trusted", result.steady_pollution_trusted)
      .field("discovery_round", round_opt(result.discovery_round))
      .field("stability_round", round_opt(result.stability_round))
      .field("mean_eviction_rate", result.mean_eviction_rate)
      .field("mean_trusted_ratio", result.mean_trusted_ratio)
      .field_raw("ident_best", to_json(result.ident_best))
      .field_raw("ident_final", to_json(result.ident_final))
      .field("enclave_cycles_total", result.enclave_cycles_total)
      .field("swaps_completed", result.swaps_completed)
      .field("pulls_completed", result.pulls_completed)
      .field("legs_dropped", result.legs_dropped)
      .field("legs_tampered", result.legs_tampered)
      .field("legs_corrupted", result.legs_corrupted)
      .field("wire_bytes", result.wire_bytes)
      .field_raw("pollution_series", metrics::json_series(result.pollution_series))
      .field_raw("pollution_series_trusted",
                 metrics::json_series(result.pollution_series_trusted))
      .field_raw("min_knowledge_series",
                 metrics::json_series(result.min_knowledge_series));
  // Attack-side observables exist only for a non-default adversary; omitting
  // them otherwise keeps default-run result JSON byte-identical to the
  // pre-AttackSpec schema (asserted by scenario_test_attack_determinism).
  if (result.attack.engaged) doc.field_raw("attack", to_json(result.attack));
  // Same rule for event-mode observables: round-mode runs omit the block.
  if (result.evt.engaged) doc.field_raw("evt", to_json(result.evt));
  return doc.str();
}

std::string to_json(const metrics::RepeatedResult& result) {
  JsonObject doc;
  doc.field("runs", result.runs)
      .field("discovery_reached", result.discovery_reached)
      .field("stability_reached", result.stability_reached)
      .field_raw("pollution", to_json(result.pollution))
      .field_raw("pollution_honest", to_json(result.pollution_honest))
      .field_raw("pollution_trusted", to_json(result.pollution_trusted))
      .field_raw("discovery", to_json(result.discovery))
      .field_raw("stability", to_json(result.stability))
      .field_raw("eviction_rate", to_json(result.eviction_rate))
      .field_raw("trusted_ratio", to_json(result.trusted_ratio))
      .field_raw("ident_best_precision", to_json(result.ident_best_precision))
      .field_raw("ident_best_recall", to_json(result.ident_best_recall))
      .field_raw("ident_best_f1", to_json(result.ident_best_f1));
  // Same conditional-omission rule as the single-run document: only runs
  // with an engaged adversary contribute attack aggregates.
  if (result.attacked_runs > 0 || result.victim_pollution.count() > 0) {
    doc.field_raw("attack", JsonObject()
                                .field("attacked_runs", result.attacked_runs)
                                .field("isolation_reached", result.isolation_reached)
                                .field_raw("victim_pollution",
                                           to_json(result.victim_pollution))
                                .field_raw("isolation_round",
                                           to_json(result.isolation_round))
                                .field_raw("legs_suppressed",
                                           to_json(result.legs_suppressed))
                                .str());
  }
  return doc.str();
}

std::string to_json(const metrics::ComparisonResult& result) {
  return JsonObject()
      .field_raw("raptee", to_json(result.raptee))
      .field_raw("baseline", to_json(result.baseline))
      .field("resilience_improvement_pct", result.resilience_improvement_pct)
      .field("resilience_improvement_honest_pct",
             result.resilience_improvement_honest_pct)
      .field("discovery_overhead_pct", result.discovery_overhead_pct)
      .field("stability_overhead_pct", result.stability_overhead_pct)
      .str();
}

std::string experiment_document(const ScenarioSpec& spec,
                                const metrics::ExperimentResult& result) {
  return JsonObject()
      .field("schema", "raptee.scenario.experiment/4")
      .field("label", spec.label())
      .field_raw("config", to_json(spec.config()))
      .field_raw("result", to_json(result))
      .str();
}

std::string repeated_document(const ScenarioSpec& spec, std::size_t reps,
                              const metrics::RepeatedResult& result) {
  return JsonObject()
      .field("schema", "raptee.scenario.repeated/4")
      .field("label", spec.label())
      .field("reps", reps)
      .field_raw("config", to_json(spec.config()))
      .field_raw("result", to_json(result))
      .str();
}

std::string comparison_document(const ScenarioSpec& spec, std::size_t reps,
                                const metrics::ComparisonResult& result) {
  return JsonObject()
      .field("schema", "raptee.scenario.comparison/4")
      .field("label", spec.label())
      .field("reps", reps)
      .field_raw("config", to_json(spec.config()))
      .field_raw("result", to_json(result))
      .str();
}

std::string grid_document(const GridResult& sweep, std::size_t reps) {
  JsonArray axes;
  for (const Axis& axis : sweep.axes) {
    JsonArray points;
    for (const AxisPoint& point : axis.points) points.item(point.label);
    axes.item_raw(
        JsonObject().field("name", axis.name).field_raw("points", points.str()).str());
  }
  JsonArray cells;
  for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
    JsonObject cell;
    cell.field("label", sweep.specs[i].label());
    cell.field_raw("config", to_json(sweep.specs[i].config()));
    cell.field_raw("result", to_json(sweep.cells[i]));
    cells.item_raw(cell.str());
  }
  return JsonObject()
      .field("schema", "raptee.scenario.grid/4")
      .field("reps", reps)
      .field_raw("axes", axes.str())
      .field_raw("cells", cells.str())
      .str();
}

bool write(const std::string& path, std::string_view json) {
  if (!metrics::write_text_file(path, json)) {
    // raptee-lint: allow(no-iostream-in-lib) bench front-door contract: the warning must reach the operator even with logging off
    std::cerr << "warning: could not write " << path << '\n';
    return false;
  }
  // raptee-lint: allow(no-iostream-in-lib) bench front-door contract: the "[json] path" line is part of every bench's stdout
  std::cout << "[json] " << path << '\n';
  return true;
}

BenchReport::BenchReport(std::string bench_name, const Knobs& knobs)
    : bench_name_(std::move(bench_name)), knobs_json_(to_json(knobs)) {}

void BenchReport::add_row(const JsonObject& row) { rows_.item_raw(row.str()); }

BenchReport& BenchReport::set_timing(double wall_seconds, std::size_t threads,
                                     std::optional<double> speedup_vs_serial) {
  timing_json_ = JsonObject()
                     .field("wall_seconds", wall_seconds)
                     .field("threads", threads)
                     .field("speedup_vs_serial", speedup_vs_serial)
                     .str();
  return *this;
}

std::string BenchReport::document() const {
  JsonObject doc;
  doc.field("schema", "raptee.bench/4")
      .field("bench", bench_name_)
      .field_raw("knobs", knobs_json_);
  if (!timing_json_.empty()) doc.field_raw("timing", timing_json_);
  doc.field_raw("rows", rows_.str());
  return doc.str();
}

bool BenchReport::write(const std::string& dir) const {
  return results::write(dir + "/" + bench_name_ + ".json", document());
}

}  // namespace raptee::scenario::results
