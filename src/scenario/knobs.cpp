#include "scenario/knobs.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "adversary/strategy.hpp"
#include "common/assert.hpp"

namespace raptee::scenario {

std::uint64_t parse_u64(const char* what, const char* value, std::uint64_t min,
                        std::uint64_t max) {
  RAPTEE_REQUIRE(value != nullptr && *value != '\0',
                 what << " must be an unsigned decimal integer, got an empty value");
  for (const char* c = value; *c != '\0'; ++c) {
    RAPTEE_REQUIRE(*c >= '0' && *c <= '9',
                   what << " must be an unsigned decimal integer, got '" << value
                        << "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  RAPTEE_REQUIRE(errno != ERANGE, what << "=" << value
                                       << " does not fit in 64 bits");
  const auto result = static_cast<std::uint64_t>(parsed);
  RAPTEE_REQUIRE(result >= min && result <= max,
                 what << "=" << value << " out of range [" << min << ", " << max
                      << "]");
  return result;
}

double parse_double(const char* what, const char* value, double min, double max) {
  RAPTEE_REQUIRE(value != nullptr && *value != '\0',
                 what << " must be a non-negative decimal number, got an empty value");
  bool seen_dot = false;
  bool seen_digit = false;
  for (const char* c = value; *c != '\0'; ++c) {
    if (*c == '.') {
      RAPTEE_REQUIRE(!seen_dot, what << " has two decimal points: '" << value << "'");
      seen_dot = true;
      continue;
    }
    RAPTEE_REQUIRE(*c >= '0' && *c <= '9',
                   what << " must be a non-negative decimal number, got '" << value
                        << "'");
    seen_digit = true;
  }
  RAPTEE_REQUIRE(seen_digit, what << " must contain a digit, got '" << value << "'");
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  RAPTEE_REQUIRE(errno != ERANGE, what << "=" << value << " overflows a double");
  RAPTEE_REQUIRE(parsed >= min && parsed <= max,
                 what << "=" << value << " out of range [" << min << ", " << max
                      << "]");
  return parsed;
}

void cli_usage(const char* program, const char* synopsis,
               std::initializer_list<CliOption> options, const char* error) {
  std::size_t width = 0;
  for (const CliOption& option : options) {
    const std::size_t len = std::strlen(option.name);
    if (len > width) width = len;
  }
  // raptee-lint: allow(no-iostream-in-lib) CLI contract: usage text goes to stderr verbatim, never through a leveled logger
  std::cerr << "error: " << error << "\n"
            << "usage: " << program << ' ' << synopsis << "\n";
  for (const CliOption& option : options) {
    // raptee-lint: allow(no-iostream-in-lib) CLI contract: usage text goes to stderr verbatim, never through a leveled logger
    std::cerr << "  " << option.name
              << std::string(width - std::strlen(option.name) + 2, ' ')
              << option.help << "\n";
  }
  std::exit(2);
}

namespace {

/// Strict decimal parse of an environment variable (parse_u64 semantics);
/// unset returns `fallback`.
std::uint64_t env_u64(const char* name, std::uint64_t fallback, std::uint64_t min,
                      std::uint64_t max) {
  const char* value = std::getenv(name);
  if (!value) return fallback;
  return parse_u64(name, value, min, max);
}

std::size_t env_size(const char* name, std::size_t fallback, std::size_t min = 1,
                     std::size_t max = 1u << 30) {
  return static_cast<std::size_t>(env_u64(name, fallback, min, max));
}

}  // namespace

Knobs Knobs::from_env() {
  Knobs knobs;
  knobs.full = env_u64("RAPTEE_BENCH_FULL", 0, 0, 1) != 0;
  if (knobs.full) {
    knobs.n = 10000;
    knobs.l1 = 200;
    knobs.rounds = 200;
    knobs.reps = 10;
  }
  knobs.n = env_size("RAPTEE_BENCH_N", knobs.n, 8);
  knobs.l1 = env_size("RAPTEE_BENCH_L1", knobs.l1);
  knobs.rounds = static_cast<Round>(env_size("RAPTEE_BENCH_ROUNDS", knobs.rounds));
  knobs.reps = env_size("RAPTEE_BENCH_REPS", knobs.reps);
  // 0 would be ambiguous with the "auto" default — unset the variable to
  // get hardware concurrency, or pass an explicit 1..4096.
  knobs.threads = env_size("RAPTEE_BENCH_THREADS", knobs.threads, 1, 4096);
  knobs.seed = env_u64("RAPTEE_BENCH_SEED", knobs.seed, 0, ~0ull);
  knobs.tamper_pct = env_size("RAPTEE_BENCH_TAMPER_PCT", knobs.tamper_pct, 0, 100);
  knobs.port = static_cast<std::uint16_t>(env_u64("RAPTEE_BENCH_PORT", 0, 0, 65535));
  knobs.connections = env_size("RAPTEE_BENCH_CONNECTIONS", knobs.connections, 1, 4096);
  knobs.duration_ms = env_u64("RAPTEE_BENCH_DURATION_MS", knobs.duration_ms, 1, 600000);
  if (const char* latency = std::getenv("RAPTEE_BENCH_LATENCY")) {
    // Resolve through the evt catalog so a typo fails loudly, with the
    // valid names in the message (LatencySpec::named throws).
    (void)evt::LatencySpec::named(latency);
    knobs.latency = latency;
  }
  if (const char* jitter = std::getenv("RAPTEE_BENCH_JITTER_PCT")) {
    knobs.jitter_pct = parse_double("RAPTEE_BENCH_JITTER_PCT", jitter, 0.0, 100.0);
  }
  if (const char* partition = std::getenv("RAPTEE_BENCH_PARTITION")) {
    (void)evt::PartitionSchedule::named(partition, knobs.rounds);
    knobs.partition = partition;
  }
  if (const char* attack = std::getenv("RAPTEE_BENCH_ATTACK")) {
    RAPTEE_REQUIRE(adversary::StrategyRegistry::instance().contains(attack),
                   "RAPTEE_BENCH_ATTACK names an unregistered strategy: '" << attack
                                                                           << "'");
    knobs.attack = attack;
  }
  return knobs;
}

ScenarioSpec Knobs::base_spec() const {
  return ScenarioSpec()
      .population(n)
      .view_size(l1)
      .rounds(rounds)
      .seed(seed)
      .adversary(0.0)
      .attack(adversary::AttackSpec::named(attack))
      .auth_mode(brahms::AuthMode::kFingerprint);
}

evt::LatencySpec Knobs::latency_spec() const {
  evt::LatencySpec spec = evt::LatencySpec::named(latency);
  if (jitter_pct > 0.0) spec.jitter_pct = jitter_pct;
  return spec;
}

evt::PartitionSchedule Knobs::partition_schedule() const {
  return evt::PartitionSchedule::named(partition, rounds);
}

std::vector<int> Knobs::f_grid() const {
  if (full) {
    std::vector<int> grid;
    for (int f = 10; f <= 30; f += 2) grid.push_back(f);
    return grid;
  }
  return {10, 20, 30};
}

std::vector<int> Knobs::t_grid() const {
  if (full) return {1, 5, 10, 20, 30, 50};
  return {1, 10, 30};
}

std::vector<int> Knobs::er_grid() const {
  if (full) return {0, 20, 40, 60, 80, 100};
  return {0, 60, 100};
}

}  // namespace raptee::scenario
