#include "scenario/knobs.hpp"

#include <cstdlib>

namespace raptee::scenario {

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name)) {
    const long parsed = std::atol(value);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

/// Unlike the sizing knobs, 0 is a legitimate seed and the full uint64
/// range must survive the parse.
std::uint64_t env_seed(const char* name, std::uint64_t fallback) {
  if (const char* value = std::getenv(name)) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end != value && *end == '\0') return static_cast<std::uint64_t>(parsed);
  }
  return fallback;
}

}  // namespace

Knobs Knobs::from_env() {
  Knobs knobs;
  if (const char* full = std::getenv("RAPTEE_BENCH_FULL")) {
    knobs.full = std::atoi(full) != 0;
  }
  if (knobs.full) {
    knobs.n = 10000;
    knobs.l1 = 200;
    knobs.rounds = 200;
    knobs.reps = 10;
  }
  knobs.n = env_size("RAPTEE_BENCH_N", knobs.n);
  knobs.l1 = env_size("RAPTEE_BENCH_L1", knobs.l1);
  knobs.rounds = static_cast<Round>(env_size("RAPTEE_BENCH_ROUNDS", knobs.rounds));
  knobs.reps = env_size("RAPTEE_BENCH_REPS", knobs.reps);
  knobs.threads = env_size("RAPTEE_BENCH_THREADS", knobs.threads);
  knobs.seed = env_seed("RAPTEE_BENCH_SEED", knobs.seed);
  return knobs;
}

ScenarioSpec Knobs::base_spec() const {
  return ScenarioSpec()
      .population(n)
      .view_size(l1)
      .rounds(rounds)
      .seed(seed)
      .adversary(0.0)
      .auth_mode(brahms::AuthMode::kFingerprint);
}

std::vector<int> Knobs::f_grid() const {
  if (full) {
    std::vector<int> grid;
    for (int f = 10; f <= 30; f += 2) grid.push_back(f);
    return grid;
  }
  return {10, 20, 30};
}

std::vector<int> Knobs::t_grid() const {
  if (full) return {1, 5, 10, 20, 30, 50};
  return {1, 10, 30};
}

std::vector<int> Knobs::er_grid() const {
  if (full) return {0, 20, 40, 60, 80, 100};
  return {0, 60, 100};
}

}  // namespace raptee::scenario
