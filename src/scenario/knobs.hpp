// Environment-driven sizing shared by every figure/table bench.
//
// Grids default to a runtime-trimmed "quick" mode; RAPTEE_BENCH_FULL=1
// selects the paper-scale grid (N=10,000, view 200, 200 rounds, 10 reps,
// f in 10..30 step 2, t in {1,5,10,20,30,50}, ER in {0,20,...,100}), and
// individual knobs are overridden with RAPTEE_BENCH_N / _L1 / _ROUNDS /
// _REPS / _THREADS / _SEED. README.md documents the full table.
//
// Parsing is strict: a knob must be a plain unsigned decimal in range —
// signs, trailing garbage (`RAPTEE_BENCH_SEED=12abc`), overlong or
// out-of-range values raise std::invalid_argument instead of silently
// falling back.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace raptee::scenario {

/// Strict unsigned-decimal parse shared by the env knobs and example argv
/// handling: digits only (no sign, no trailing garbage), range-checked
/// against [min, max]. Throws std::invalid_argument with a message naming
/// `what` on any violation.
[[nodiscard]] std::uint64_t parse_u64(const char* what, const char* value,
                                      std::uint64_t min, std::uint64_t max);

/// Strict non-negative decimal parse (digits with an optional fractional
/// part — "20", "12.5"; no sign, no exponent, no trailing garbage),
/// range-checked against [min, max]. Throws std::invalid_argument.
[[nodiscard]] double parse_double(const char* what, const char* value, double min,
                                  double max);

/// One argument row in a tool's usage block: name plus one-line help.
struct CliOption {
  const char* name;
  const char* help;
};

/// Shared bad-usage exit for the CLI tools (rapteed, raptee_load): prints
///   error: <error>
///   usage: <program> <synopsis>
///     <name>  <help>        (names column-aligned)
/// to stderr and exits 2 — the status the CI bad-usage gate asserts.
[[noreturn]] void cli_usage(const char* program, const char* synopsis,
                            std::initializer_list<CliOption> options,
                            const char* error);

struct Knobs {
  bool full = false;
  std::size_t n = 400;
  std::size_t l1 = 40;
  Round rounds = 150;
  std::size_t reps = 1;
  /// Runner pool width for cell batches: 0 = hardware concurrency (the
  /// default), 1 = sequential. RAPTEE_BENCH_THREADS accepts 1..4096.
  std::size_t threads = 0;
  std::uint64_t seed = 20220308;  // arXiv date of the paper
  /// Strongest tamper_rate point (percent) of the tamper-sweep bench;
  /// RAPTEE_BENCH_TAMPER_PCT accepts 0..100.
  std::size_t tamper_pct = 25;
  /// Adversary strategy applied by base_spec(); RAPTEE_BENCH_ATTACK accepts
  /// any name registered with adversary::StrategyRegistry (default
  /// parameters via AttackSpec::named).
  std::string attack = "balanced";
  /// Service-bench (bench/service_load) knobs. RAPTEE_BENCH_PORT accepts
  /// 0..65535 (0 = ephemeral), RAPTEE_BENCH_CONNECTIONS 1..4096,
  /// RAPTEE_BENCH_DURATION_MS 1..600000.
  std::uint16_t port = 0;
  std::size_t connections = 8;
  std::uint64_t duration_ms = 1000;
  /// Event-mode knobs (bench/latency_sweep). RAPTEE_BENCH_LATENCY accepts
  /// any evt::LatencySpec::named model ("zero", "lan", "wan", "tail",
  /// "geo3"); RAPTEE_BENCH_JITTER_PCT accepts 0..100 (applied on top of the
  /// model's own jitter); RAPTEE_BENCH_PARTITION accepts any
  /// evt::PartitionSchedule::named schedule ("none", "mid-third",
  /// "late-half"). base_spec() stays in round mode — benches opt into the
  /// event scheduler per cell with event_spec().
  std::string latency = "lan";
  double jitter_pct = 0.0;
  std::string partition = "none";

  /// Reads RAPTEE_BENCH_* from the environment (strict parse, see above).
  [[nodiscard]] static Knobs from_env();

  /// The base spec shared by all figure benches (fingerprint auth, no
  /// adversary/trust configured — benches layer those per cell).
  [[nodiscard]] ScenarioSpec base_spec() const;

  /// The latency/jitter/partition knobs resolved into an event-mode
  /// LatencySpec + PartitionSchedule pair (partition windows denominated in
  /// `rounds`). Benches apply them via ScenarioSpec::latency()/partition()
  /// or the Grid axes.
  [[nodiscard]] evt::LatencySpec latency_spec() const;
  [[nodiscard]] evt::PartitionSchedule partition_schedule() const;

  /// Byzantine-fraction grid (percent): paper 10..30 step 2; quick {10,20,30}.
  [[nodiscard]] std::vector<int> f_grid() const;
  /// Trusted-fraction grid (percent): paper {1,5,10,20,30,50}; quick {1,10,30}.
  [[nodiscard]] std::vector<int> t_grid() const;
  /// Eviction-rate grid (percent): paper {0,20,...,100}; quick {0,60,100}.
  [[nodiscard]] std::vector<int> er_grid() const;
};

}  // namespace raptee::scenario
