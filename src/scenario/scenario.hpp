// Umbrella header for the scenario API — the one front door to the
// simulator shared by benches, examples and tests:
//
//   * ScenarioSpec (spec.hpp)      — fluent, validated scenario builder
//   * Runner/Grid (runner.hpp)     — run / repeat / compare / batch / grid
//   * IScenarioObserver (observer.hpp) — per-round streaming snapshots
//   * Knobs (knobs.hpp)            — RAPTEE_BENCH_* environment sizing
//   * results:: (results.hpp)      — structured JSON documents (bench_out/)
#pragma once

#include "scenario/knobs.hpp"     // IWYU pragma: export
#include "scenario/observer.hpp"  // IWYU pragma: export
#include "scenario/results.hpp"   // IWYU pragma: export
#include "scenario/runner.hpp"    // IWYU pragma: export
#include "scenario/spec.hpp"      // IWYU pragma: export
