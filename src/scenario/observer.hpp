// Streaming observation of a running scenario.
//
// ExperimentResult carries full per-round series vectors; before this
// interface existed, callers chose between "buffer everything" and
// "see nothing". An IScenarioObserver instead receives one RoundSnapshot
// per executed round — pollution split three ways, discovery progress,
// adaptive-eviction telemetry and the engine's cumulative exchange
// counters — plus engine access at round and run boundaries, so examples
// and tools can stream dashboards, scan live views or snapshot the
// converged overlay without re-implementing the experiment loop.
//
// Delivery contract (asserted by tests/scenario/test_observer.cpp):
//   on_run_start    once, after population build + bootstrap, round 0 not yet run
//   on_round        exactly `rounds` times, after each engine round completes;
//                   snapshot values are bit-identical to the entries the
//                   final ExperimentResult series gained that round (a
//                   series that skipped an unobservable round reports 0)
//   on_run_end      once, after the last round, with the collected result
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace raptee::sim {
class Engine;
}  // namespace raptee::sim

namespace raptee::metrics {
struct ExperimentConfig;
struct ExperimentResult;
}  // namespace raptee::metrics

namespace raptee::scenario {

/// One round's worth of the paper's metrics, as later found in the
/// ExperimentResult series, plus the engine's cumulative counters.
struct RoundSnapshot {
  Round round = 0;                 ///< the round that just completed (0-based)

  double pollution = 0.0;          ///< Byzantine share of all correct views
  double pollution_honest = 0.0;   ///< honest untrusted nodes only
  double pollution_trusted = 0.0;  ///< trusted (incl. poisoned) nodes only
  double min_knowledge = 0.0;      ///< worst-node discovery progress (0..1)

  /// Mean adaptive-eviction telemetry over alive trusted nodes this round;
  /// 0 when the scenario has no (alive) trusted nodes.
  double eviction_rate = 0.0;
  double trusted_ratio = 0.0;

  /// Mean victim view pollution this round (targeted attacks only; 0 when
  /// the scenario has no victim set or no victim was alive this round).
  double victim_pollution = 0.0;
  /// Whether the adversary strategy was on duty this round (false when the
  /// scenario has no Byzantine population; oscillating attackers toggle).
  bool attack_active = false;

  /// Engine exchange counters, cumulative since round 0.
  std::uint64_t swaps_completed = 0;
  std::uint64_t pulls_completed = 0;
  std::uint64_t pushes_delivered = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t legs_dropped = 0;
  std::uint64_t legs_tampered = 0;   ///< on-path flips (tamper_rate)
  std::uint64_t legs_corrupted = 0;  ///< receiver-rejected legs
  std::uint64_t legs_suppressed = 0; ///< pulls an omission adversary refused

  /// Event-mode observables (src/evt), all 0 in round mode: the engine's
  /// virtual clock after this round, plus cumulative deadline misses and
  /// partition-severed messages.
  std::uint64_t virtual_ms = 0;
  std::uint64_t legs_late = 0;
  std::uint64_t partition_drops = 0;

  /// Wall-clock milliseconds this round spent in each engine phase,
  /// indexed by sim::Engine::Phase (begin_round, push_gen, push_deliver,
  /// pulls, end_round). Profiling data, not simulation state: the values
  /// vary run to run and are excluded from every determinism gate.
  std::array<double, 5> phase_ms{};
};

/// Per-round streaming hook attached to Runner::run / metrics::run_experiment.
/// Observers run synchronously on the simulation thread: keep callbacks
/// cheap, and treat the engine reference as read-only.
class IScenarioObserver {
 public:
  virtual ~IScenarioObserver() = default;

  /// Population is built and bootstrapped; no round has run yet.
  virtual void on_run_start(const metrics::ExperimentConfig& config,
                            const sim::Engine& engine) {
    (void)config;
    (void)engine;
  }

  /// A round completed. `snapshot.round` counts from 0.
  virtual void on_round(const RoundSnapshot& snapshot, const sim::Engine& engine) = 0;

  /// The run finished; `result` is the fully-collected ExperimentResult and
  /// `engine` still holds the converged overlay (views, counters, kinds).
  virtual void on_run_end(const metrics::ExperimentResult& result,
                          const sim::Engine& engine) {
    (void)result;
    (void)engine;
  }
};

}  // namespace raptee::scenario
