// ScenarioSpec: the one front door to the simulator.
//
// The paper's evaluation is a grid of scenarios — Byzantine fraction ×
// trusted fraction × eviction × churn × identification × wire fidelity —
// and before this API every layer (benches, examples, tests) assembled raw
// metrics::ExperimentConfig structs field by field. ScenarioSpec is the
// composable, validated builder they all share now:
//
//   auto result = scenario::ScenarioSpec()
//                     .population(400)
//                     .adversary(0.2)        // f, share of the base population
//                     .trusted_share(0.3)    // of the *correct* population
//                     .eviction(core::EvictionSpec::adaptive())
//                     .churn(true)
//                     .seed(7)
//                     .run();
//
// `trusted_share` is denominated in the correct population (1.0 = every
// correct node is trusted at any f); `trusted` sets the population-wide
// fraction directly, like ExperimentConfig::trusted_fraction. The last one
// called wins. ExperimentConfig stays as the validated POD underneath —
// `config()` materializes it; Runner (runner.hpp) executes specs.
#pragma once

#include <cstdint>
#include <string>

#include "metrics/experiment.hpp"

namespace raptee::scenario {

class ScenarioSpec {
 public:
  ScenarioSpec() = default;
  /// Adopts an existing config (escape hatch for legacy call sites).
  explicit ScenarioSpec(const metrics::ExperimentConfig& config) : base_(config) {}

  // --- population & schedule ---
  ScenarioSpec& population(std::size_t n);
  ScenarioSpec& view_size(std::size_t l1);  ///< sets l1 and l2 together
  ScenarioSpec& brahms_params(const brahms::Params& params);
  ScenarioSpec& rounds(Round rounds);
  ScenarioSpec& seed(std::uint64_t seed);

  // --- adversary ---
  /// Byzantine fraction f of the base population.
  ScenarioSpec& adversary(double fraction);
  ScenarioSpec& adversary_pct(int percent) { return adversary(percent / 100.0); }
  /// Selects the adversary's behaviour: any strategy registered with
  /// adversary::StrategyRegistry plus its parameters. The default
  /// (AttackSpec::balanced()) is bit-identical to not calling attack().
  ScenarioSpec& attack(const adversary::AttackSpec& spec);
  /// Registered strategy name with its default parameters
  /// (adversary::AttackSpec::named).
  ScenarioSpec& attack(const std::string& strategy_name);
  /// Injected view-poisoned trusted nodes, as a fraction of the base
  /// population (the §VI-B injection attack).
  ScenarioSpec& poisoned_extra(double fraction);
  /// Attaches the §VI-A trusted-node identification attack.
  ScenarioSpec& identification(double threshold = 0.10);

  // --- trusted population ---
  /// Trusted fraction of the WHOLE population (paper's t).
  ScenarioSpec& trusted(double fraction);
  ScenarioSpec& trusted_pct(int percent) { return trusted(percent / 100.0); }
  /// Trusted fraction of the CORRECT population; resolved to
  /// trusted_fraction = share * (1 - f) when the config is materialized.
  ScenarioSpec& trusted_share(double share);
  ScenarioSpec& trusted_overlay(bool enabled);

  // --- defenses ---
  /// Fixed Byzantine-eviction rate in percent; 0 disables eviction.
  ScenarioSpec& eviction_pct(int percent);
  ScenarioSpec& eviction(const core::EvictionSpec& spec);

  // --- dynamics & fidelity ---
  /// Steady background churn (default spec: 2 %/round, 5-round downtime,
  /// rejoin) — or a custom spec.
  ScenarioSpec& churn(bool enabled);
  ScenarioSpec& churn(const metrics::ChurnSpec& spec);
  ScenarioSpec& auth_mode(brahms::AuthMode mode);
  /// Engine-internal parallelism for THIS run — every shardable round
  /// phase: push generation and delivery, pull-target generation,
  /// begin_round, and end_round (eviction/view renewal). 1 = legacy
  /// sequential rounds (default), 0 = hardware concurrency, n > 1 = shard
  /// over n workers. Results are deterministic and worker-count-independent
  /// for every width; opting in (any value != 1) switches only the
  /// push-LOSS draws onto splittable per-node streams, so lossless runs are
  /// bit-identical to the sequential path too. Exchange legs stay serial
  /// (shared loss/tamper stream, two-endpoint mutation). Batch-level
  /// fan-out lives on Runner, not here.
  ScenarioSpec& threads(std::size_t n);
  ScenarioSpec& stability_window(std::size_t rounds);
  ScenarioSpec& cycle_model(bool enabled);
  ScenarioSpec& wire_roundtrip(bool enabled);
  ScenarioSpec& encrypt_links(bool enabled);
  ScenarioSpec& message_loss(double probability);
  /// Per-leg on-path bit-flip probability (implies the byte round-trip);
  /// with encrypt_links the AEAD rejects every flip, without it only
  /// structural corruption is caught by the typed-leg validator.
  ScenarioSpec& tamper_rate(double probability);
  /// Persistent per-pair link sessions (default); false re-derives per
  /// exchange — the bench/scale_links ablation baseline.
  ScenarioSpec& link_sessions(bool enabled);

  // --- event-driven time (src/evt) ---
  /// Adopts a full event config (escape hatch; the setters below compose).
  ScenarioSpec& event(const evt::EventConfig& config);
  /// Switches the engine onto the event scheduler (virtual clock, per-link
  /// latency, partitions). Off = round mode, the bit-exact baseline.
  ScenarioSpec& event_mode(bool enabled = true);
  /// Per-link latency model; implies event_mode(true).
  ScenarioSpec& latency(const evt::LatencySpec& spec);
  /// Named latency model from evt::LatencySpec::named ("zero", "lan", "wan",
  /// "tail", "geo3"); implies event_mode(true).
  ScenarioSpec& latency(const std::string& name);
  /// Timed region partition; implies event_mode(true).
  ScenarioSpec& partition(const evt::PartitionSchedule& schedule);
  /// Named partition schedule from evt::PartitionSchedule::named ("none",
  /// "mid-third", "late-half"), resolved against rounds(); implies
  /// event_mode(true).
  ScenarioSpec& partition(const std::string& name);
  /// Region count of the event topology (node → node % regions).
  ScenarioSpec& regions(std::uint32_t regions);
  /// Virtual round deadline; messages past it are counted late and dropped.
  ScenarioSpec& round_interval_ms(std::uint64_t ms);

  /// Free-form label carried into result provenance (JSON "label" field).
  ScenarioSpec& label(std::string text);
  [[nodiscard]] const std::string& label() const { return label_; }

  /// The fully-resolved, NOT yet validated config (share -> fraction
  /// mapping applied); run()/Runner validate before executing.
  [[nodiscard]] metrics::ExperimentConfig config() const;

  /// Builds and runs the experiment (convenience for one-shot callers;
  /// use Runner for repetition, comparison, grids and observers).
  [[nodiscard]] metrics::ExperimentResult run() const;

 private:
  metrics::ExperimentConfig base_{};
  double trusted_share_ = 0.0;
  bool use_trusted_share_ = false;
  std::string label_;
};

}  // namespace raptee::scenario
