// results: structured JSON serialization for every scenario outcome.
//
// Every document embeds full config provenance (population, adversary,
// Brahms parameters, eviction, churn, fidelity knobs AND the seed), so a
// bench_out/*.json file alone suffices to reproduce the run. Formatting is
// deterministic (see metrics/json.hpp): a fixed-seed run emits the same
// bytes every time, which the scenario tests assert and which makes the
// bench trajectory diffable.
//
// Document shapes ("schema" field, versioned):
//   raptee.scenario.experiment/4  — one run: config + full result series
//   raptee.scenario.repeated/4    — mean/σ aggregate over reps
//   raptee.scenario.comparison/4  — RAPTEE vs Brahms at matched f
//   raptee.scenario.grid/4        — axes + one aggregate per cell
//   raptee.bench/4                — a figure bench: knobs + derived rows +
//                                   optional wall-clock timing
//
// /3 (AttackSpec): every config block gains an "attack" object (strategy +
// parameters) and bench knobs gain "attack". Result blocks gain an "attack"
// object (victim pollution series, rounds_to_isolation, legs_suppressed,
// rounds_active) ONLY when the run's adversary deviates from the default
// balanced attack — default-run *result* JSON is byte-identical to /2.
//
// /4 (event-driven time): bench knobs gain "latency"/"jitter_pct"/
// "partition". Config blocks gain an "event" object and result blocks an
// "evt" object (virtual_ms, legs_late, partition_drops,
// dissemination_time_ms) ONLY when the run opted into the event scheduler —
// round-mode config and result JSON is byte-identical to /3.
#pragma once

#include <string>
#include <string_view>

#include "metrics/experiment.hpp"
#include "metrics/json.hpp"
#include "scenario/knobs.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace raptee::scenario::results {

// --- building blocks (JSON fragments, spliced with field_raw) ---
[[nodiscard]] std::string to_json(const Knobs& knobs);
[[nodiscard]] std::string to_json(const adversary::AttackSpec& attack);
[[nodiscard]] std::string to_json(const metrics::AttackOutcome& attack);
[[nodiscard]] std::string to_json(const metrics::EvtOutcome& evt);
[[nodiscard]] std::string to_json(const metrics::ExperimentConfig& config);
[[nodiscard]] std::string to_json(const RunningStats& stats);
[[nodiscard]] std::string to_json(const metrics::ExperimentResult& result);
[[nodiscard]] std::string to_json(const metrics::RepeatedResult& result);
[[nodiscard]] std::string to_json(const metrics::ComparisonResult& result);
[[nodiscard]] std::string to_json(const adversary::IdentificationResult& result);

// --- complete documents ---
[[nodiscard]] std::string experiment_document(const ScenarioSpec& spec,
                                              const metrics::ExperimentResult& result);
[[nodiscard]] std::string repeated_document(const ScenarioSpec& spec, std::size_t reps,
                                            const metrics::RepeatedResult& result);
[[nodiscard]] std::string comparison_document(const ScenarioSpec& spec, std::size_t reps,
                                              const metrics::ComparisonResult& result);
[[nodiscard]] std::string grid_document(const GridResult& sweep, std::size_t reps);

/// Writes a document to `path` (creating directories); returns false and
/// warns on stderr on I/O failure.
bool write(const std::string& path, std::string_view json);

/// A figure bench's machine-readable sink: knobs provenance + one derived
/// row per cell, written to <dir>/<bench_name>.json. Rows mirror the CSV
/// columns but keep numbers as numbers and missing values as null.
class BenchReport {
 public:
  BenchReport(std::string bench_name, const Knobs& knobs);

  /// Adds one row; build it with metrics::JsonObject.
  void add_row(const metrics::JsonObject& row);

  /// Records the bench's execution timing: wall-clock seconds for the cell
  /// batch, the resolved exec worker count, and (when measured against a
  /// 1-thread run, as bench/scale_threads.cpp does) the speedup. Timing is
  /// the one machine-dependent part of a document — every other byte of a
  /// fixed-seed bench file is deterministic.
  BenchReport& set_timing(double wall_seconds, std::size_t threads,
                          std::optional<double> speedup_vs_serial = std::nullopt);

  [[nodiscard]] std::string document() const;
  /// Writes <dir>/<bench_name>.json; returns false on I/O failure.
  bool write(const std::string& dir = "bench_out") const;

 private:
  std::string bench_name_;
  std::string knobs_json_;
  metrics::JsonArray rows_;
  std::string timing_json_;  // empty until set_timing
};

}  // namespace raptee::scenario::results
