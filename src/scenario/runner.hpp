// Runner: executes ScenarioSpecs — single runs (optionally streamed to an
// IScenarioObserver), seed-decorrelated repetitions, RAPTEE-vs-Brahms
// comparisons, ordered batches across a worker pool, and multi-axis grids.
//
// Grid models the paper's sweep shape directly: a base spec plus named
// axes, each axis a list of labelled mutations. Cells are materialized in
// row-major order (first axis slowest), and GridResult::at({i, j, ...})
// indexes the aggregated results the same way:
//
//   scenario::Grid grid(knobs.base_spec());
//   grid.axis_eviction_pct(knobs.er_grid()).axis_trusted_pct(knobs.t_grid());
//   const auto sweep = scenario::Runner(knobs.threads).run_grid(grid, reps);
//   sweep.at({er_index, t_index}).pollution.mean();
#pragma once

#include <functional>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "metrics/experiment.hpp"
#include "scenario/spec.hpp"

namespace raptee::scenario {

class IScenarioObserver;

/// One labelled point on a grid axis: a mutation applied to the base spec.
struct AxisPoint {
  std::string label;                          ///< e.g. "f=10%"
  std::function<void(ScenarioSpec&)> apply;   ///< cell mutation
};

/// A named sweep dimension.
struct Axis {
  std::string name;
  std::vector<AxisPoint> points;
};

class Grid {
 public:
  explicit Grid(ScenarioSpec base) : base_(std::move(base)) {}

  /// Appends a custom axis. Axes multiply: cells() is the cross product.
  Grid& axis(std::string name, std::vector<AxisPoint> points);

  // Axes for the paper's standard sweep dimensions (integer percents).
  Grid& axis_adversary_pct(const std::vector<int>& percents);
  Grid& axis_trusted_pct(const std::vector<int>& percents);
  Grid& axis_eviction_pct(const std::vector<int>& percents);
  /// Attack-strategy axis: one point per AttackSpec, labelled by strategy
  /// name (the attack-matrix sweep dimension).
  Grid& axis_attack(const std::vector<adversary::AttackSpec>& specs);
  /// Same, with explicit labels (needed when one strategy appears twice
  /// with different parameters, e.g. eclipse on honest vs trusted victims).
  Grid& axis_attack(const std::vector<std::pair<std::string, adversary::AttackSpec>>& specs);
  /// Eviction-policy axis with explicit labelled specs (e.g. none / fixed /
  /// adaptive — richer than the fixed-percent axis).
  Grid& axis_eviction(const std::vector<std::pair<std::string, core::EvictionSpec>>& specs);
  /// Latency-model axis (event-driven time): each point switches the cell
  /// onto the event scheduler with the given model. Label "zero"/"lan"/...
  Grid& axis_latency(const std::vector<std::pair<std::string, evt::LatencySpec>>& specs);
  /// Partition-schedule axis (event-driven time); implies event mode.
  Grid& axis_partition(
      const std::vector<std::pair<std::string, evt::PartitionSchedule>>& specs);

  [[nodiscard]] const ScenarioSpec& base() const { return base_; }
  [[nodiscard]] const std::vector<Axis>& axes() const { return axes_; }
  /// Total cell count (product of axis sizes; 1 when no axes).
  [[nodiscard]] std::size_t size() const;
  /// All cells in row-major order (first axis slowest), each labelled
  /// "axis1=point1/axis2=point2/...".
  [[nodiscard]] std::vector<ScenarioSpec> cells() const;

 private:
  ScenarioSpec base_;
  std::vector<Axis> axes_;
};

/// Aggregated results of a grid sweep, indexable by per-axis indices.
struct GridResult {
  std::vector<Axis> axes;
  std::vector<ScenarioSpec> specs;              ///< row-major, same order as cells
  std::vector<metrics::RepeatedResult> cells;   ///< row-major

  /// `indices` must carry one index per axis.
  [[nodiscard]] const metrics::RepeatedResult& at(
      std::initializer_list<std::size_t> indices) const;
  [[nodiscard]] std::size_t flat_index(std::initializer_list<std::size_t> indices) const;
};

class Runner {
 public:
  /// `threads` — exec::ThreadPool width for repeated/batch/grid/comparison
  /// runs; 0 = hardware concurrency, 1 = fully sequential. Every cell
  /// derives its seeds independently, so the parallel output (including
  /// results::to_json bytes) is bit-identical to threads == 1 — asserted
  /// by scenario_test_parallel_determinism.
  explicit Runner(std::size_t threads = 0) : threads_(threads) {}

  /// One run; `observer` (optional) streams per-round snapshots.
  [[nodiscard]] metrics::ExperimentResult run(const ScenarioSpec& spec,
                                              IScenarioObserver* observer = nullptr) const;

  /// Mean/σ aggregation over `reps` seed-decorrelated runs.
  [[nodiscard]] metrics::RepeatedResult run_repeated(const ScenarioSpec& spec,
                                                     std::size_t reps) const;

  /// RAPTEE-vs-Brahms at matched f (§V-B resilience improvement).
  [[nodiscard]] metrics::ComparisonResult run_comparison(const ScenarioSpec& spec,
                                                         std::size_t reps) const;

  /// Runs every spec `reps` times (seed-decorrelated), all cells flattened
  /// into one batch across the worker pool; aggregates per spec, preserving
  /// order. The throughput backbone of every figure bench.
  [[nodiscard]] std::vector<metrics::RepeatedResult> run_batch(
      const std::vector<ScenarioSpec>& specs, std::size_t reps) const;

  /// Cross-product sweep; cells run as one flattened batch.
  [[nodiscard]] GridResult run_grid(const Grid& grid, std::size_t reps) const;

 private:
  std::size_t threads_ = 0;
};

}  // namespace raptee::scenario
