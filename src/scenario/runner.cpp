#include "scenario/runner.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "scenario/observer.hpp"

namespace raptee::scenario {

namespace {

/// The seed-decorrelation stream shared with metrics::run_repeated, so a
/// batch cell and a standalone repetition of the same spec agree bit for
/// bit.
std::uint64_t rep_seed(std::uint64_t base_seed, std::size_t rep) {
  return mix64(base_seed, 0x5265705Aull + rep);
}

metrics::RepeatedResult aggregate(const metrics::ExperimentResult* results,
                                  std::size_t count) {
  metrics::RepeatedResult agg;
  for (std::size_t i = 0; i < count; ++i) {
    const metrics::ExperimentResult& r = results[i];
    ++agg.runs;
    agg.pollution.add(r.steady_pollution);
    agg.pollution_honest.add(r.steady_pollution_honest);
    agg.pollution_trusted.add(r.steady_pollution_trusted);
    if (r.discovery_round) {
      agg.discovery.add(static_cast<double>(*r.discovery_round));
      ++agg.discovery_reached;
    }
    if (r.stability_round) {
      agg.stability.add(static_cast<double>(*r.stability_round));
      ++agg.stability_reached;
    }
    agg.eviction_rate.add(r.mean_eviction_rate);
    agg.trusted_ratio.add(r.mean_trusted_ratio);
    agg.ident_best_precision.add(r.ident_best.precision);
    agg.ident_best_recall.add(r.ident_best.recall);
    agg.ident_best_f1.add(r.ident_best.f1);
  }
  return agg;
}

}  // namespace

Grid& Grid::axis(std::string name, std::vector<AxisPoint> points) {
  RAPTEE_REQUIRE(!points.empty(), "grid axis '" << name << "' has no points");
  axes_.push_back({std::move(name), std::move(points)});
  return *this;
}

Grid& Grid::axis_adversary_pct(const std::vector<int>& percents) {
  std::vector<AxisPoint> points;
  points.reserve(percents.size());
  for (const int f : percents) {
    points.push_back({"f=" + std::to_string(f) + "%",
                      [f](ScenarioSpec& spec) { spec.adversary_pct(f); }});
  }
  return axis("adversary", std::move(points));
}

Grid& Grid::axis_trusted_pct(const std::vector<int>& percents) {
  std::vector<AxisPoint> points;
  points.reserve(percents.size());
  for (const int t : percents) {
    points.push_back({"t=" + std::to_string(t) + "%",
                      [t](ScenarioSpec& spec) { spec.trusted_pct(t); }});
  }
  return axis("trusted", std::move(points));
}

Grid& Grid::axis_eviction_pct(const std::vector<int>& percents) {
  std::vector<AxisPoint> points;
  points.reserve(percents.size());
  for (const int er : percents) {
    points.push_back({"er=" + std::to_string(er) + "%",
                      [er](ScenarioSpec& spec) {
                        spec.eviction(core::EvictionSpec::fixed(er / 100.0));
                      }});
  }
  return axis("eviction", std::move(points));
}

std::size_t Grid::size() const {
  std::size_t total = 1;
  for (const Axis& axis : axes_) total *= axis.points.size();
  return total;
}

std::vector<ScenarioSpec> Grid::cells() const {
  std::vector<ScenarioSpec> cells;
  const std::size_t total = size();
  cells.reserve(total);
  for (std::size_t flat = 0; flat < total; ++flat) {
    ScenarioSpec cell = base_;
    std::string label = cell.label();
    // Row-major: the first axis varies slowest.
    std::size_t remainder = flat;
    std::size_t block = total;
    for (const Axis& axis : axes_) {
      block /= axis.points.size();
      const AxisPoint& point = axis.points[remainder / block];
      remainder %= block;
      point.apply(cell);
      if (!label.empty()) label += '/';
      label += axis.name + "=" + point.label;
    }
    cell.label(label);
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::size_t GridResult::flat_index(std::initializer_list<std::size_t> indices) const {
  RAPTEE_REQUIRE(indices.size() == axes.size(),
                 "grid lookup expects " << axes.size() << " indices, got "
                                        << indices.size());
  std::size_t flat = 0;
  std::size_t axis_index = 0;
  for (const std::size_t i : indices) {
    const Axis& axis = axes[axis_index++];
    RAPTEE_REQUIRE(i < axis.points.size(),
                   "index " << i << " out of range for axis '" << axis.name << "'");
    flat = flat * axis.points.size() + i;
  }
  return flat;
}

const metrics::RepeatedResult& GridResult::at(
    std::initializer_list<std::size_t> indices) const {
  return cells[flat_index(indices)];
}

metrics::ExperimentResult Runner::run(const ScenarioSpec& spec,
                                      IScenarioObserver* observer) const {
  return metrics::run_experiment(spec.config(), observer);
}

metrics::RepeatedResult Runner::run_repeated(const ScenarioSpec& spec,
                                             std::size_t reps) const {
  return metrics::run_repeated(spec.config(), reps, threads_);
}

metrics::ComparisonResult Runner::run_comparison(const ScenarioSpec& spec,
                                                 std::size_t reps) const {
  return metrics::run_comparison(spec.config(), reps, threads_);
}

std::vector<metrics::RepeatedResult> Runner::run_batch(
    const std::vector<ScenarioSpec>& specs, std::size_t reps) const {
  RAPTEE_REQUIRE(reps >= 1, "need at least one repetition");
  std::vector<metrics::ExperimentConfig> flat;
  flat.reserve(specs.size() * reps);
  for (const ScenarioSpec& spec : specs) {
    const metrics::ExperimentConfig config = spec.config();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      metrics::ExperimentConfig cell = config;
      cell.seed = rep_seed(config.seed, rep);
      flat.push_back(cell);
    }
  }
  const auto results = metrics::run_batch(flat, threads_);

  std::vector<metrics::RepeatedResult> out;
  out.reserve(specs.size());
  for (std::size_t c = 0; c < specs.size(); ++c) {
    out.push_back(aggregate(results.data() + c * reps, reps));
  }
  return out;
}

GridResult Runner::run_grid(const Grid& grid, std::size_t reps) const {
  GridResult result;
  result.axes = grid.axes();
  result.specs = grid.cells();
  result.cells = run_batch(result.specs, reps);
  return result;
}

}  // namespace raptee::scenario
