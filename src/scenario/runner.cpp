#include "scenario/runner.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "exec/parallel.hpp"
#include "obs/monitor.hpp"
#include "scenario/observer.hpp"

namespace raptee::scenario {

namespace {

/// Fans one observer stream out to two sinks (caller observer + the env
/// monitor). Lives on the stack of Runner::run for the run's duration.
class TeeObserver final : public IScenarioObserver {
 public:
  TeeObserver(IScenarioObserver* a, IScenarioObserver* b) : a_(a), b_(b) {}

  void on_run_start(const metrics::ExperimentConfig& config,
                    const sim::Engine& engine) override {
    a_->on_run_start(config, engine);
    b_->on_run_start(config, engine);
  }
  void on_round(const RoundSnapshot& snapshot, const sim::Engine& engine) override {
    a_->on_round(snapshot, engine);
    b_->on_round(snapshot, engine);
  }
  void on_run_end(const metrics::ExperimentResult& result,
                  const sim::Engine& engine) override {
    a_->on_run_end(result, engine);
    b_->on_run_end(result, engine);
  }

 private:
  IScenarioObserver* a_;
  IScenarioObserver* b_;
};

/// Flattens (specs × reps) into one run list with decorrelated seeds —
/// metrics::repetition_seed, so a batch cell and a standalone repetition of
/// the same spec agree bit for bit.
std::vector<metrics::ExperimentConfig> flatten_reps(
    const std::vector<metrics::ExperimentConfig>& configs, std::size_t reps) {
  std::vector<metrics::ExperimentConfig> flat;
  flat.reserve(configs.size() * reps);
  for (const metrics::ExperimentConfig& config : configs) {
    for (std::size_t rep = 0; rep < reps; ++rep) {
      metrics::ExperimentConfig cell = config;
      cell.seed = metrics::repetition_seed(config.seed, rep);
      flat.push_back(cell);
    }
  }
  return flat;
}

/// Runs every flattened cell as one exec::parallel_map task and reduces
/// each consecutive `reps`-sized slice back to its aggregate. This is the
/// multi-core backbone under run_repeated / run_batch / run_grid /
/// run_comparison; parallel output is bit-identical to threads == 1.
std::vector<metrics::RepeatedResult> run_flattened(
    const std::vector<metrics::ExperimentConfig>& configs, std::size_t reps,
    std::size_t threads) {
  RAPTEE_REQUIRE(reps >= 1, "need at least one repetition");
  const std::vector<metrics::ExperimentConfig> flat = flatten_reps(configs, reps);
  // The env monitor (RAPTEE_BENCH_MONITOR_PORT) streams every cell; its
  // callbacks are mutex-guarded, so parallel cells interleave safely, and
  // the observer path is read-only, so attaching it leaves every result
  // byte identical.
  obs::ScenarioMonitor* monitor = obs::env_monitor();
  const auto results = exec::parallel_map(
      threads, flat.size(), [&flat, monitor](std::size_t i) {
        return metrics::run_experiment(flat[i], monitor);
      });

  std::vector<metrics::RepeatedResult> out;
  out.reserve(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    out.push_back(metrics::aggregate_runs(results.data() + c * reps, reps));
  }
  return out;
}

}  // namespace

Grid& Grid::axis(std::string name, std::vector<AxisPoint> points) {
  RAPTEE_REQUIRE(!points.empty(), "grid axis '" << name << "' has no points");
  axes_.push_back({std::move(name), std::move(points)});
  return *this;
}

Grid& Grid::axis_adversary_pct(const std::vector<int>& percents) {
  std::vector<AxisPoint> points;
  points.reserve(percents.size());
  for (const int f : percents) {
    points.push_back({"f=" + std::to_string(f) + "%",
                      [f](ScenarioSpec& spec) { spec.adversary_pct(f); }});
  }
  return axis("adversary", std::move(points));
}

Grid& Grid::axis_trusted_pct(const std::vector<int>& percents) {
  std::vector<AxisPoint> points;
  points.reserve(percents.size());
  for (const int t : percents) {
    points.push_back({"t=" + std::to_string(t) + "%",
                      [t](ScenarioSpec& spec) { spec.trusted_pct(t); }});
  }
  return axis("trusted", std::move(points));
}

Grid& Grid::axis_eviction_pct(const std::vector<int>& percents) {
  std::vector<AxisPoint> points;
  points.reserve(percents.size());
  for (const int er : percents) {
    points.push_back({"er=" + std::to_string(er) + "%",
                      [er](ScenarioSpec& spec) {
                        spec.eviction(core::EvictionSpec::fixed(er / 100.0));
                      }});
  }
  return axis("eviction", std::move(points));
}

Grid& Grid::axis_attack(const std::vector<adversary::AttackSpec>& specs) {
  std::vector<std::pair<std::string, adversary::AttackSpec>> labelled;
  labelled.reserve(specs.size());
  for (const adversary::AttackSpec& attack : specs) labelled.emplace_back(attack.strategy, attack);
  return axis_attack(labelled);
}

Grid& Grid::axis_attack(
    const std::vector<std::pair<std::string, adversary::AttackSpec>>& specs) {
  std::vector<AxisPoint> points;
  points.reserve(specs.size());
  for (const auto& [label, attack] : specs) {
    points.push_back({label, [attack](ScenarioSpec& spec) { spec.attack(attack); }});
  }
  return axis("attack", std::move(points));
}

Grid& Grid::axis_eviction(
    const std::vector<std::pair<std::string, core::EvictionSpec>>& specs) {
  std::vector<AxisPoint> points;
  points.reserve(specs.size());
  for (const auto& [label, eviction] : specs) {
    points.push_back(
        {label, [eviction](ScenarioSpec& spec) { spec.eviction(eviction); }});
  }
  return axis("eviction", std::move(points));
}

Grid& Grid::axis_latency(
    const std::vector<std::pair<std::string, evt::LatencySpec>>& specs) {
  std::vector<AxisPoint> points;
  points.reserve(specs.size());
  for (const auto& [label, latency] : specs) {
    points.push_back({label, [latency](ScenarioSpec& spec) { spec.latency(latency); }});
  }
  return axis("latency", std::move(points));
}

Grid& Grid::axis_partition(
    const std::vector<std::pair<std::string, evt::PartitionSchedule>>& specs) {
  std::vector<AxisPoint> points;
  points.reserve(specs.size());
  for (const auto& [label, partition] : specs) {
    points.push_back(
        {label, [partition](ScenarioSpec& spec) { spec.partition(partition); }});
  }
  return axis("partition", std::move(points));
}

std::size_t Grid::size() const {
  std::size_t total = 1;
  for (const Axis& axis : axes_) total *= axis.points.size();
  return total;
}

std::vector<ScenarioSpec> Grid::cells() const {
  std::vector<ScenarioSpec> cells;
  const std::size_t total = size();
  cells.reserve(total);
  for (std::size_t flat = 0; flat < total; ++flat) {
    ScenarioSpec cell = base_;
    std::string label = cell.label();
    // Row-major: the first axis varies slowest.
    std::size_t remainder = flat;
    std::size_t block = total;
    for (const Axis& axis : axes_) {
      block /= axis.points.size();
      const AxisPoint& point = axis.points[remainder / block];
      remainder %= block;
      point.apply(cell);
      if (!label.empty()) label += '/';
      label += axis.name + "=" + point.label;
    }
    cell.label(label);
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::size_t GridResult::flat_index(std::initializer_list<std::size_t> indices) const {
  RAPTEE_REQUIRE(indices.size() == axes.size(),
                 "grid lookup expects " << axes.size() << " indices, got "
                                        << indices.size());
  std::size_t flat = 0;
  std::size_t axis_index = 0;
  for (const std::size_t i : indices) {
    const Axis& axis = axes[axis_index++];
    RAPTEE_REQUIRE(i < axis.points.size(),
                   "index " << i << " out of range for axis '" << axis.name << "'");
    flat = flat * axis.points.size() + i;
  }
  return flat;
}

const metrics::RepeatedResult& GridResult::at(
    std::initializer_list<std::size_t> indices) const {
  return cells[flat_index(indices)];
}

metrics::ExperimentResult Runner::run(const ScenarioSpec& spec,
                                      IScenarioObserver* observer) const {
  obs::ScenarioMonitor* monitor = obs::env_monitor();
  if (monitor == nullptr) return metrics::run_experiment(spec.config(), observer);
  if (observer == nullptr) return metrics::run_experiment(spec.config(), monitor);
  TeeObserver tee(observer, monitor);
  return metrics::run_experiment(spec.config(), &tee);
}

metrics::RepeatedResult Runner::run_repeated(const ScenarioSpec& spec,
                                             std::size_t reps) const {
  return run_flattened({spec.config()}, reps, threads_).front();
}

metrics::ComparisonResult Runner::run_comparison(const ScenarioSpec& spec,
                                                 std::size_t reps) const {
  // Both sides run as ONE fused batch so the pool never idles between the
  // RAPTEE and Brahms halves; aggregation per half is unchanged, so the
  // result is bit-identical to two standalone run_repeated calls.
  const metrics::ExperimentConfig raptee_config = spec.config();
  auto halves = run_flattened(
      {raptee_config, metrics::comparison_baseline(raptee_config)}, reps, threads_);
  return metrics::finalize_comparison(std::move(halves[0]), std::move(halves[1]));
}

std::vector<metrics::RepeatedResult> Runner::run_batch(
    const std::vector<ScenarioSpec>& specs, std::size_t reps) const {
  std::vector<metrics::ExperimentConfig> configs;
  configs.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) configs.push_back(spec.config());
  return run_flattened(configs, reps, threads_);
}

GridResult Runner::run_grid(const Grid& grid, std::size_t reps) const {
  GridResult result;
  result.axes = grid.axes();
  result.specs = grid.cells();
  result.cells = run_batch(result.specs, reps);
  return result;
}

}  // namespace raptee::scenario
