#include "sgx/overhead.hpp"

#include <chrono>

#include "common/assert.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace raptee::sgx {

const char* to_string(FunctionClass fc) {
  switch (fc) {
    case FunctionClass::kPullRequest: return "Pull request";
    case FunctionClass::kPushMessage: return "Push message";
    case FunctionClass::kTrustedComms: return "Trusted communications";
    case FunctionClass::kSampleListComputation: return "Sample list comput.";
    case FunctionClass::kDynamicViewComputation: return "Dynamic view comput.";
    case FunctionClass::kAttestation: return "Attestation";
    case FunctionClass::kOther: return "Other";
    case FunctionClass::kCount_: break;
  }
  return "?";
}

CycleModel CycleModel::paper_table1() {
  // Values straight from Table I: standard cycles, SGX cycles, σ (% of the
  // mean overhead).
  CycleModel m;
  m.set(FunctionClass::kPullRequest, {15623.0, 18593.0, 0.03});
  m.set(FunctionClass::kPushMessage, {7521.0, 9182.0, 0.03});
  m.set(FunctionClass::kTrustedComms, {9845.0, 11516.0, 0.03});
  m.set(FunctionClass::kSampleListComputation, {13024.0, 15364.0, 0.04});
  m.set(FunctionClass::kDynamicViewComputation, {12457.0, 15076.0, 0.02});
  // Attestation happens once per node lifetime; charge a representative
  // enclave-heavy cost (quote generation + key unwrap ≈ 10 ecalls).
  m.set(FunctionClass::kAttestation, {0.0, 120000.0, 0.05});
  m.set(FunctionClass::kOther, {0.0, 2500.0, 0.05});
  return m;
}

void CycleModel::set(FunctionClass fc, OverheadEntry entry) {
  entries_[static_cast<std::size_t>(fc)] = entry;
}

const OverheadEntry& CycleModel::entry(FunctionClass fc) const {
  return entries_[static_cast<std::size_t>(fc)];
}

Cycles CycleModel::sample_overhead(FunctionClass fc, Rng& rng) const {
  const OverheadEntry& e = entries_[static_cast<std::size_t>(fc)];
  const double mean = e.mean_overhead();
  if (mean <= 0.0) return 0;
  const double draw = rng.normal(mean, e.stddev_fraction * mean);
  return draw <= 0.0 ? 0 : static_cast<Cycles>(draw);
}

Cycles CycleLedger::total_cycles() const {
  Cycles total = 0;
  for (Cycles c : cycles_) total += c;
  return total;
}

void CycleLedger::reset() {
  cycles_.fill(0);
  calls_.fill(0);
}

Cycles read_cycle_counter() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  // Fallback: nanoseconds scaled by a nominal 3 GHz.
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
  return static_cast<Cycles>(ns) * 3;
#endif
}

}  // namespace raptee::sgx
