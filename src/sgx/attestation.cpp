#include "sgx/attestation.hpp"

#include <algorithm>

namespace raptee::sgx {

AttestationService::AttestationService(std::uint64_t seed) {
  crypto::Drbg rng(seed, "raptee-attestation-service");
  quoting_key_ = rng.generate_key();
  group_key_ = rng.generate_key();
}

void AttestationService::allowlist(const Measurement& m) {
  if (!is_allowlisted(m)) allowlist_.push_back(m);
}

bool AttestationService::is_allowlisted(const Measurement& m) const {
  return std::find(allowlist_.begin(), allowlist_.end(), m) != allowlist_.end();
}

crypto::Digest256 AttestationService::sign(const Measurement& m,
                                           const std::array<std::uint8_t, 32>& rd) const {
  crypto::HmacSha256 mac(quoting_key_.bytes().data(), quoting_key_.bytes().size());
  mac.update(m.value.data(), m.value.size());
  mac.update(rd.data(), rd.size());
  return mac.finish();
}

Quote AttestationService::issue_quote(Enclave& enclave) {
  Quote q;
  q.measurement = enclave.measurement();
  q.report_data = enclave.make_report_data();
  q.signature = sign(q.measurement, q.report_data);
  return q;
}

bool AttestationService::verify_quote(const Quote& quote) const {
  if (!is_allowlisted(quote.measurement)) return false;
  return crypto::digest_equal(quote.signature, sign(quote.measurement, quote.report_data));
}

bool AttestationService::provision(Enclave& enclave) {
  const Quote quote = issue_quote(enclave);
  if (!verify_quote(quote)) return false;
  enclave.install_group_key(group_key_);
  ++provisioned_;
  return true;
}

}  // namespace raptee::sgx
