// Remote attestation emulation.
//
// Real flow (Intel SGX): an enclave produces a REPORT, the platform's
// quoting enclave signs it into a QUOTE, the attestation service verifies
// the signature and the measurement, and the verifier provisions secrets
// over a channel bound to the quote's report data.
//
// Emulated flow: AttestationService issues quotes only for a concrete
// Enclave instance (reading the measurement itself — modeling the hardware
// guarantee that a quote's measurement cannot be forged), verifies them
// with an HMAC under its private quoting key, and installs the group key
// directly into verified enclaves through a friend-only entry point
// (modeling the attestation-derived secure channel). A node WITHOUT an
// allowlisted enclave can never obtain the key; a node WITH one gets honest
// enclave behaviour — both exactly the paper's trust model.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/key.hpp"
#include "sgx/enclave.hpp"

namespace raptee::sgx {

struct Quote {
  Measurement measurement;
  std::array<std::uint8_t, 32> report_data{};
  crypto::Digest256 signature{};  // HMAC under the service's quoting key
};

class AttestationService {
 public:
  explicit AttestationService(std::uint64_t seed);

  /// Adds a measurement to the allowlist of genuine trusted-node builds.
  void allowlist(const Measurement& m);
  [[nodiscard]] bool is_allowlisted(const Measurement& m) const;

  /// Issues a quote for a live enclave (the measurement is read from the
  /// enclave itself; callers cannot claim an arbitrary one).
  [[nodiscard]] Quote issue_quote(Enclave& enclave);

  /// Verifies signature + allowlist.
  [[nodiscard]] bool verify_quote(const Quote& quote) const;

  /// Full provisioning round: quote -> verify -> install the group key into
  /// the enclave. Returns false (and installs nothing) for enclaves whose
  /// measurement is not allowlisted.
  bool provision(Enclave& enclave);

  /// Number of successful provisionings (diagnostics).
  [[nodiscard]] std::size_t provisioned_count() const { return provisioned_; }

 private:
  [[nodiscard]] crypto::Digest256 sign(const Measurement& m,
                                       const std::array<std::uint8_t, 32>& rd) const;

  crypto::SymmetricKey quoting_key_;
  crypto::SymmetricKey group_key_;
  std::vector<Measurement> allowlist_;
  std::size_t provisioned_ = 0;
};

}  // namespace raptee::sgx
