#include "sgx/enclave.hpp"

#include <cmath>
#include <cstring>

#include "brahms/auth.hpp"
#include "common/assert.hpp"
#include "wire/link_cipher.hpp"

namespace raptee::sgx {

Measurement measure_code(const std::string& code_identity) {
  return Measurement{crypto::sha256(code_identity)};
}

const std::string& raptee_enclave_identity() {
  static const std::string identity = "raptee-trusted-enclave-v1.0";
  return identity;
}

Enclave::Enclave(std::string code_identity, std::uint64_t seed, const CycleModel* model)
    : code_identity_(std::move(code_identity)),
      measurement_(measure_code(code_identity_)),
      model_(model),
      cycle_rng_(mix64(seed, 0x53475843ull)),
      protocol_rng_(mix64(seed, 0x50524F54ull)),
      drbg_(seed, "raptee-enclave") {
  device_secret_ = drbg_.generate_key();
}

void Enclave::charge(FunctionClass fc) {
  if (model_ != nullptr) ledger_.charge(fc, model_->sample_overhead(fc, cycle_rng_));
}

void Enclave::require_key(const char* op) const {
  RAPTEE_ASSERT_MSG(group_key_.has_value(),
                    "enclave operation `" << op << "` before provisioning");
}

std::array<std::uint8_t, 32> Enclave::make_report_data() {
  charge(FunctionClass::kAttestation);
  std::array<std::uint8_t, 32> rd{};
  drbg_.fill(rd.data(), rd.size());
  return rd;
}

crypto::AuthToken Enclave::auth_make_proof(const crypto::AuthNonce& a,
                                           const crypto::AuthNonce& b) {
  require_key("auth_make_proof");
  charge(FunctionClass::kPullRequest);
  return crypto::make_proof(*group_key_, a, b);
}

bool Enclave::auth_check_proof(const crypto::AuthNonce& a, const crypto::AuthNonce& b,
                               const crypto::AuthToken& token) {
  require_key("auth_check_proof");
  charge(FunctionClass::kPullRequest);
  return crypto::check_proof(*group_key_, a, b, token);
}

crypto::AuthToken Enclave::auth_mac_proof(const char* domain, const crypto::AuthNonce& a,
                                          const crypto::AuthNonce& b) {
  require_key("auth_mac_proof");
  charge(FunctionClass::kPullRequest);
  return brahms::auth_detail::mac_proof(*group_key_, domain, a, b);
}

std::uint64_t Enclave::group_fingerprint() {
  require_key("group_fingerprint");
  return group_key_->fingerprint();
}

std::vector<NodeId> Enclave::filter_pulled(const std::vector<NodeId>& ids,
                                           double eviction_rate) {
  require_key("filter_pulled");
  charge(FunctionClass::kTrustedComms);
  if (eviction_rate <= 0.0) return ids;
  if (eviction_rate >= 1.0) return {};
  const double keep_fraction = 1.0 - eviction_rate;
  const auto keep = static_cast<std::size_t>(
      std::lround(keep_fraction * static_cast<double>(ids.size())));
  return protocol_rng_.sample(ids, keep);
}

std::vector<NodeId> Enclave::select_swap_half(const std::vector<NodeId>& view_ids) {
  require_key("select_swap_half");
  charge(FunctionClass::kTrustedComms);
  const std::size_t half = (view_ids.size() + 1) / 2;
  return protocol_rng_.sample(view_ids, half);
}

void Enclave::install_group_key(const crypto::SymmetricKey& key) {
  charge(FunctionClass::kAttestation);
  group_key_ = key;
}

crypto::SymmetricKey Enclave::sealing_key() const {
  // MRENCLAVE-policy sealing: bound to the device root AND the measurement,
  // so only the same code on the same device can unseal.
  crypto::SymmetricKey k = device_secret_.derive("raptee-seal");
  crypto::HmacSha256 mac(k.bytes().data(), k.bytes().size());
  mac.update(measurement_.value.data(), measurement_.value.size());
  const crypto::Digest256 d = mac.finish();
  std::array<std::uint8_t, 32> bytes{};
  std::memcpy(bytes.data(), d.data(), bytes.size());
  return crypto::SymmetricKey(bytes);
}

std::optional<std::vector<std::uint8_t>> Enclave::seal_group_key() {
  if (!group_key_) return std::nullopt;
  charge(FunctionClass::kOther);
  wire::LinkCipher sealer(sealing_key(), /*direction=*/0);
  return sealer.seal(group_key_->to_vector());
}

bool Enclave::unseal_group_key(const std::vector<std::uint8_t>& blob) {
  charge(FunctionClass::kOther);
  wire::LinkCipher opener(sealing_key(), /*direction=*/0);
  const auto plain = opener.open(blob);
  if (!plain || plain->size() != crypto::SymmetricKey::kBytes) return false;
  std::array<std::uint8_t, crypto::SymmetricKey::kBytes> bytes{};
  std::memcpy(bytes.data(), plain->data(), bytes.size());
  group_key_ = crypto::SymmetricKey(bytes);
  return true;
}

}  // namespace raptee::sgx
