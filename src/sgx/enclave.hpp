// Enclave emulation runtime.
//
// What the paper uses: Intel SGX SDK enclaves whose code is remotely
// attested; attestation provisions the trusted group secret into the
// enclave; the secret never leaves it; Byzantine nodes can neither read
// enclave memory nor forge attested code.
//
// What we build (substitution, DESIGN.md §2): an Enclave object that
//   * carries a measurement (SHA-256 of its code identity string);
//   * holds the group secret in private state, set only through the
//     attestation flow (AttestationService is the sole befriended writer —
//     C++ access control models the hardware isolation boundary);
//   * exposes only the operations the trusted RAPTEE logic needs (auth
//     proofs, pulled-ID filtering, swap-half selection), so the secret is
//     used inside and never returned;
//   * charges every entry ("ecall") to a CycleLedger via the Table-I
//     CycleModel, reproducing the paper's emulated-SGX timing methodology;
//   * offers sealed storage (AES-CTR + HMAC under a measurement-bound
//     sealing key), the SGX idiom for persisting secrets across restarts.
//
// Why the substitution preserves behaviour: the protocol-visible properties
// of SGX here are (1) only attested code obtains the group key, (2) the key
// is confidential, (3) trusted code cannot be made to deviate. All three
// are enforced by this runtime's construction; performance effects are
// captured by the calibrated cycle model, exactly as in the paper's own
// large-scale emulation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "crypto/key.hpp"
#include "crypto/mutual_auth.hpp"
#include "crypto/sha256.hpp"
#include "sgx/overhead.hpp"

namespace raptee::sgx {

class AttestationService;

/// MRENCLAVE-style code measurement.
struct Measurement {
  crypto::Digest256 value{};

  friend bool operator==(const Measurement&, const Measurement&) = default;
};

[[nodiscard]] Measurement measure_code(const std::string& code_identity);

/// The canonical identity of the genuine RAPTEE trusted-node enclave.
[[nodiscard]] const std::string& raptee_enclave_identity();

class Enclave {
 public:
  /// Instantiates an enclave running `code_identity`. Anyone — including
  /// the adversary — may run the *genuine* enclave binary (that is exactly
  /// the paper's poisoned-trusted-node attack); what nobody can do is run
  /// *modified* code under the genuine measurement.
  Enclave(std::string code_identity, std::uint64_t seed, const CycleModel* model = nullptr);

  [[nodiscard]] const Measurement& measurement() const { return measurement_; }
  [[nodiscard]] const std::string& code_identity() const { return code_identity_; }
  [[nodiscard]] bool has_group_key() const { return group_key_.has_value(); }
  [[nodiscard]] const CycleLedger& ledger() const { return ledger_; }

  /// Report data bound into this enclave's quote (fresh nonce).
  [[nodiscard]] std::array<std::uint8_t, 32> make_report_data();

  // --- trusted operations (all charge the ledger; all require the key) ---

  /// `[H(a·b)]_Kg` — the group-keyed proof of the mutual-auth protocol.
  [[nodiscard]] crypto::AuthToken auth_make_proof(const crypto::AuthNonce& a,
                                                  const crypto::AuthNonce& b);
  [[nodiscard]] bool auth_check_proof(const crypto::AuthNonce& a,
                                      const crypto::AuthNonce& b,
                                      const crypto::AuthToken& token);
  /// Keyed-MAC proof for the Fingerprint transport mode.
  [[nodiscard]] crypto::AuthToken auth_mac_proof(const char* domain,
                                                 const crypto::AuthNonce& a,
                                                 const crypto::AuthNonce& b);
  /// Group-key fingerprint (Oracle transport mode).
  [[nodiscard]] std::uint64_t group_fingerprint();

  /// Byzantine-eviction filter (§IV-C): keeps a uniformly chosen
  /// (1 - eviction_rate) fraction of `ids`. Runs inside the enclave so the
  /// dropped/kept decision is not adversarially observable.
  [[nodiscard]] std::vector<NodeId> filter_pulled(const std::vector<NodeId>& ids,
                                                  double eviction_rate);

  /// Uniform half-view selection for a trusted exchange.
  [[nodiscard]] std::vector<NodeId> select_swap_half(const std::vector<NodeId>& view_ids);

  // --- sealed storage (persists the group key across "restarts") ---
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> seal_group_key();
  /// Restores the group key from a blob sealed by an enclave with the SAME
  /// measurement; returns false on tamper or measurement mismatch.
  bool unseal_group_key(const std::vector<std::uint8_t>& blob);

  /// Generic cycle charge for enclave-hosted protocol phases the node
  /// executes inline (sample-list and view computation, per Table I).
  void charge(FunctionClass fc);

 private:
  friend class AttestationService;
  /// Attestation-channel-only entry point (models the secret provisioning
  /// over the remote-attestation secure channel).
  void install_group_key(const crypto::SymmetricKey& key);

  [[nodiscard]] crypto::SymmetricKey sealing_key() const;
  void require_key(const char* op) const;

  std::string code_identity_;
  Measurement measurement_;
  const CycleModel* model_;  // nullptr => zero-cost model
  /// Overhead sampling only. Kept strictly separate from protocol_rng_ so
  /// that cycle accounting can never perturb protocol behaviour (auth-mode
  /// equivalence, design decision D5, depends on this).
  Rng cycle_rng_;
  /// Protocol-relevant randomness (eviction filter, swap-half selection).
  Rng protocol_rng_;
  crypto::Drbg drbg_;
  CycleLedger ledger_;
  crypto::SymmetricKey device_secret_;  // per-device sealing root
  std::optional<crypto::SymmetricKey> group_key_;
};

}  // namespace raptee::sgx
