// SGX cycle-overhead model — the emulation calibrated by the paper's
// Table I methodology (§V-A/V-B).
//
// The paper measures, on real SGX NUCs, the CPU-cycle cost of five peer-
// sampling functions inside and outside enclaves, then emulates SGX at
// 10,000-node scale by "adding a random delay that depends on the mean
// CPU-cycle overhead and follows its standard deviation". CycleModel is
// exactly that: per-function Gaussian overhead draws, defaulting to the
// published Table I calibration and re-calibratable from our own
// micro-benchmark (bench/table1_sgx_overhead).
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace raptee::sgx {

/// The five instrumented peer-sampling functions of Table I, plus buckets
/// for attestation-time and other enclave work.
enum class FunctionClass : std::uint8_t {
  kPullRequest = 0,
  kPushMessage,
  kTrustedComms,
  kSampleListComputation,
  kDynamicViewComputation,
  kAttestation,
  kOther,
  kCount_,
};

inline constexpr std::size_t kFunctionClassCount =
    static_cast<std::size_t>(FunctionClass::kCount_);

[[nodiscard]] const char* to_string(FunctionClass fc);

struct OverheadEntry {
  double standard_cycles = 0.0;  ///< cost outside the enclave (Table I col 1)
  double sgx_cycles = 0.0;       ///< cost inside (Table I col 2)
  double stddev_fraction = 0.0;  ///< σ of the overhead, as fraction of mean

  [[nodiscard]] double mean_overhead() const { return sgx_cycles - standard_cycles; }
};

class CycleModel {
 public:
  /// All-zero model (no SGX cost).
  CycleModel() = default;

  /// The calibration published in the paper's Table I.
  [[nodiscard]] static CycleModel paper_table1();

  void set(FunctionClass fc, OverheadEntry entry);
  [[nodiscard]] const OverheadEntry& entry(FunctionClass fc) const;

  /// One Gaussian draw of the enclave-transition overhead for `fc`,
  /// clamped at zero (an enclave call is never faster).
  [[nodiscard]] Cycles sample_overhead(FunctionClass fc, Rng& rng) const;

 private:
  std::array<OverheadEntry, kFunctionClassCount> entries_{};
};

/// Per-node ledger of virtual cycles spent inside the enclave, by function
/// class — the simulator's accounting of SGX cost (reported by the metrics
/// subsystem and checked by tests).
class CycleLedger {
 public:
  void charge(FunctionClass fc, Cycles amount) {
    cycles_[static_cast<std::size_t>(fc)] += amount;
    ++calls_[static_cast<std::size_t>(fc)];
  }
  [[nodiscard]] Cycles cycles(FunctionClass fc) const {
    return cycles_[static_cast<std::size_t>(fc)];
  }
  [[nodiscard]] std::uint64_t calls(FunctionClass fc) const {
    return calls_[static_cast<std::size_t>(fc)];
  }
  [[nodiscard]] Cycles total_cycles() const;
  void reset();

 private:
  std::array<Cycles, kFunctionClassCount> cycles_{};
  std::array<std::uint64_t, kFunctionClassCount> calls_{};
};

/// Reads the CPU timestamp counter (rdtsc on x86-64; a steady-clock-derived
/// approximation elsewhere). Used by the Table-I micro-benchmark.
[[nodiscard]] Cycles read_cycle_counter();

}  // namespace raptee::sgx
