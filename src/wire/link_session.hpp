// Persistent per-pair link sessions.
//
// The paper's §III-B link encryption is a *session* property in a real
// deployment: two nodes run one key agreement, then amortize the derived
// cipher state over every exchange they perform. The simulator used to
// model the opposite — a fresh label allocation, HKDF derivation and two
// DuplexLink constructions for every exchange of every round — which made
// the encrypted exchange phase the hottest allocation site in the engine.
//
// LinkTable caches exactly one LinkSession per unordered node pair:
//
//   * session(a, b, round) establishes (or returns) the pair's session;
//     establishment derives a fresh link secret from the engine's master
//     key, uniquified by an establishment counter so a re-established pair
//     never reuses a keystream. Derivation cost drops from
//     O(exchanges × rounds) to O(active pairs).
//   * Sequence numbers run continuously across exchanges and rounds (nonce
//     continuity); the session is torn down and re-established on churn
//     (invalidate(node)) and on AEAD failure (invalidate_pair), exactly as
//     a deployed endpoint would rekey after a crash or an integrity alarm.
//   * retire_idle(round, max_idle) bounds memory on large populations:
//     pairs that stopped exchanging are dropped and re-derive on next use.
//
// Determinism: the table draws no simulation randomness — session keys are
// a pure function of (master key, pair, establishment index) — so caching
// is invisible to every observable metric; only ciphertext bytes change.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "crypto/key.hpp"
#include "wire/link_cipher.hpp"

namespace raptee::wire {

/// One cached duplex session between an unordered node pair. Each direction
/// is a single LinkCipher carrying both the send and the receive sequence
/// counter — the round-synchronous simulator delivers in order, so sealing
/// and opening one leg advance the two counters in lockstep.
struct LinkSession {
  LinkSession(const crypto::SymmetricKey& secret, NodeId lo)
      : lo_to_hi(secret, 0), hi_to_lo(secret, 1), lo_(lo) {}

  /// The channel that transmits from `from` (one of the pair's endpoints).
  [[nodiscard]] LinkCipher& channel_from(NodeId from) {
    return from == lo_ ? lo_to_hi : hi_to_lo;
  }

  LinkCipher lo_to_hi;
  LinkCipher hi_to_lo;
  NodeId lo_;  ///< the pair's lower id (direction anchor)
  std::uint32_t epoch_lo = 0;  ///< endpoint epochs at establishment
  std::uint32_t epoch_hi = 0;
  std::uint64_t last_used = 0;  ///< round of last session() hit
};

class LinkTable {
 public:
  /// `cache = false` is the per-exchange-derivation baseline (the pre-cache
  /// behaviour, kept for the bench/scale_links ablation): every session()
  /// call establishes a fresh transient session.
  explicit LinkTable(const crypto::SymmetricKey& master, bool cache = true);

  /// The session for the unordered pair {a, b}, establishing it on first
  /// use, after invalidation, or after idle retirement. The reference stays
  /// valid until the next invalidate/retire_idle/session call for the pair.
  [[nodiscard]] LinkSession& session(NodeId a, NodeId b, std::uint64_t round);

  /// Invalidates every session involving `node` (O(1): epoch bump); the
  /// next exchange with each peer re-establishes with a fresh key. Called
  /// by the engine on churn transitions (crash and rejoin).
  void invalidate(NodeId node);

  /// Tears down one pair's session (AEAD failure: a deployed endpoint
  /// aborts the connection and re-handshakes).
  void invalidate_pair(NodeId a, NodeId b);

  /// Drops sessions not used for more than `max_idle` rounds, bounding
  /// memory to the working set of actively exchanging pairs.
  void retire_idle(std::uint64_t round, std::uint64_t max_idle);

  /// Cached sessions currently held (excludes the transient scratch).
  [[nodiscard]] std::size_t active_sessions() const { return sessions_.size(); }
  /// Total link-secret derivations performed — the bench/scale_links gate:
  /// with caching this tracks O(active pairs), without it O(exchanges).
  [[nodiscard]] std::uint64_t derivations() const { return derivations_; }

 private:
  [[nodiscard]] LinkSession make_session(NodeId lo, NodeId hi);
  [[nodiscard]] std::uint32_t epoch_of(NodeId node) const;

  crypto::SymmetricKey master_;
  bool cache_;
  std::unordered_map<std::uint64_t, LinkSession> sessions_;  // key: lo << 32 | hi
  std::vector<std::uint32_t> epochs_;  // per-node invalidation epochs
  std::uint64_t derivations_ = 0;
  std::optional<LinkSession> transient_;  // cache == false scratch
};

}  // namespace raptee::wire
