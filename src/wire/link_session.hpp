// Persistent per-pair link sessions.
//
// The paper's §III-B link encryption is a *session* property in a real
// deployment: two nodes run one key agreement, then amortize the derived
// cipher state over every exchange they perform. The simulator used to
// model the opposite — a fresh label allocation, HKDF derivation and two
// DuplexLink constructions for every exchange of every round — which made
// the encrypted exchange phase the hottest allocation site in the engine.
//
// LinkTable caches exactly one LinkSession per unordered node pair:
//
//   * session(a, b, round) establishes (or returns) the pair's session;
//     establishment derives a fresh link secret from the engine's master
//     key, uniquified by a per-pair establishment counter so a
//     re-established pair never reuses a keystream. Derivation cost drops
//     from O(exchanges × rounds) to O(active pairs).
//   * Sequence numbers run continuously across exchanges and rounds (nonce
//     continuity); the session is torn down and re-established on churn
//     (invalidate(node)) and on AEAD failure (invalidate_pair), exactly as
//     a deployed endpoint would rekey after a crash or an integrity alarm.
//   * retire_idle(round, max_idle) bounds memory on large populations:
//     pairs that stopped exchanging are dropped and re-derive on next use.
//
// Determinism: the table draws no simulation randomness — session keys are
// a pure function of (master key, pair, establishment index) — so caching
// is invisible to every observable metric; only ciphertext bytes change.
//
// Distributed agreement: two endpoints that each own an independent
// LinkTable constructed from the same master key derive byte-identical
// session secrets through establish(a, b, token) — the token is agreed in
// the transport handshake (both HELLO nonces of the surviving TCP
// connection, net::Bus), so key agreement is a property of the *stream*
// and survives simultaneous-dial races where the two endpoints create and
// tear down competing connections in different orders. The simulator's
// counter-based session() path models the same thing for its in-memory
// links, where establishment order is trivially symmetric.
//
// Concurrency contract (the transport dispatches from multiple
// connections while the engine may keep its own single-threaded table):
//   * Every LinkTable method is internally locked — concurrent session(),
//     invalidate(), invalidate_pair(), retire_idle() and the stat getters
//     are safe from any thread.
//   * Sessions are heap-pinned: the LinkSession& returned by session()
//     stays valid across rehashes and other pairs' establishment or
//     retirement. It dies only when ITS pair is invalidated, retired, or
//     re-established — callers must not use a reference across such an
//     event for the same pair.
//   * The LinkSession object itself (its two LinkCipher streams) is NOT
//     internally synchronized: at most one thread may seal/open on a given
//     pair's session at a time. The transport satisfies this structurally —
//     one connection owns one pair, and all of a connection's I/O runs on
//     its bus's loop thread. tests/wire/test_link_session_threads.cpp
//     enforces the table-level guarantees under TSan.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "crypto/key.hpp"
#include "wire/link_cipher.hpp"

namespace raptee::wire {

/// One cached duplex session between an unordered node pair. Each direction
/// is a single LinkCipher carrying both the send and the receive sequence
/// counter — the round-synchronous simulator delivers in order, so sealing
/// and opening one leg advance the two counters in lockstep. (Two socket
/// endpoints each hold their own equal-keyed copy and use the send counter
/// of one direction and the receive counter of the other.)
struct LinkSession {
  LinkSession(const crypto::SymmetricKey& secret, NodeId lo)
      : lo_to_hi(secret, 0), hi_to_lo(secret, 1), lo_(lo) {}

  /// The channel that transmits from `from` (one of the pair's endpoints).
  [[nodiscard]] LinkCipher& channel_from(NodeId from) {
    return from == lo_ ? lo_to_hi : hi_to_lo;
  }

  LinkCipher lo_to_hi;
  LinkCipher hi_to_lo;
  NodeId lo_;  ///< the pair's lower id (direction anchor)
  std::uint32_t epoch_lo = 0;  ///< endpoint epochs at establishment
  std::uint32_t epoch_hi = 0;
  std::uint64_t last_used = 0;  ///< round of last session() hit
};

class LinkTable {
 public:
  /// `cache = false` is the per-exchange-derivation baseline (the pre-cache
  /// behaviour, kept for the bench/scale_links ablation): every session()
  /// call establishes a fresh transient session. The baseline mode keeps a
  /// single transient slot and is only meaningful single-threaded.
  explicit LinkTable(const crypto::SymmetricKey& master, bool cache = true);

  /// The session for the unordered pair {a, b}, establishing it on first
  /// use, after invalidation, or after idle retirement. The reference stays
  /// valid until the next invalidate/retire_idle/session teardown FOR THIS
  /// PAIR (see the concurrency contract above).
  [[nodiscard]] LinkSession& session(NodeId a, NodeId b, std::uint64_t round);

  /// Transport-handshake establishment: derives the pair's session from
  /// `token` (agreed by both endpoints of one connection) instead of the
  /// local establishment counter, and replaces any cached session for the
  /// pair. Two independent same-master tables calling establish with the
  /// same token derive byte-identical secrets. The caller must guarantee no
  /// other live reference to the pair's previous session exists (net::Bus
  /// tears the superseded connection down first).
  [[nodiscard]] LinkSession& establish(NodeId a, NodeId b, std::uint64_t token);

  /// Invalidates every session involving `node` (O(1): epoch bump); the
  /// next exchange with each peer re-establishes with a fresh key. Called
  /// by the engine on churn transitions (crash and rejoin).
  void invalidate(NodeId node);

  /// Tears down one pair's session (AEAD failure or connection close: a
  /// deployed endpoint aborts the link and re-handshakes).
  void invalidate_pair(NodeId a, NodeId b);

  /// Like invalidate_pair, but only if the pair's cached session is still
  /// `expected` — a stale connection closing after the pair re-established
  /// must not tear down the successor's session.
  void invalidate_session(NodeId a, NodeId b, const LinkSession* expected);

  /// Drops sessions not used for more than `max_idle` rounds, bounding
  /// memory to the working set of actively exchanging pairs.
  void retire_idle(std::uint64_t round, std::uint64_t max_idle);

  /// Cached sessions currently held (excludes the transient scratch).
  [[nodiscard]] std::size_t active_sessions() const;
  /// Total link-secret derivations performed — the bench/scale_links gate:
  /// with caching this tracks O(active pairs), without it O(exchanges).
  [[nodiscard]] std::uint64_t derivations() const;

 private:
  [[nodiscard]] std::unique_ptr<LinkSession> make_session(NodeId lo, NodeId hi);
  [[nodiscard]] std::uint32_t epoch_of(NodeId node) const;

  crypto::SymmetricKey master_;
  bool cache_;
  mutable std::mutex mu_;
  /// key: lo << 32 | hi. unique_ptr pins each session so references stay
  /// valid across rehashes (part of the concurrency contract).
  std::unordered_map<std::uint64_t, std::unique_ptr<LinkSession>> sessions_;
  /// Per-pair establishment counters (never reset — uniquify keystreams
  /// across re-establishments and keep independent endpoint tables in
  /// agreement; see the distributed-agreement note).
  std::unordered_map<std::uint64_t, std::uint32_t> establishments_;
  std::vector<std::uint32_t> epochs_;  // per-node invalidation epochs
  std::uint64_t derivations_ = 0;
  std::unique_ptr<LinkSession> transient_;  // cache == false scratch
};

}  // namespace raptee::wire
