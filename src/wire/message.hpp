// Protocol message definitions and their wire codecs.
//
// RAPTEE's gossip round uses five message legs:
//
//   Push                 one-way; carries only the sender's ID (paper §III-A)
//   PullRequest          opens a pull exchange; piggybacks auth message 1
//   PullReply            full view of the responder; piggybacks auth message 2
//   AuthConfirm          auth message 3; when the initiator has established
//                        mutual trust it piggybacks its half-view swap offer
//   SwapReply            responder's half view, closing a trusted exchange
//
// Piggybacking the three-message authentication onto the pull exchange is a
// transport optimisation only: the byte content of each auth field is exactly
// the protocol of §IV-A, and the observable sequence (every pull preceded by
// a challenge–response) matches the paper. Every codec round-trips through
// the bounds-checked Reader, so arbitrary Byzantine bytes decode or fail
// cleanly (WireError), never crash.
#pragma once

#include <optional>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "crypto/mutual_auth.hpp"
#include "wire/buffer.hpp"

namespace raptee::wire {

enum class MsgType : std::uint8_t {
  kPush = 1,
  kPullRequest = 2,
  kPullReply = 3,
  kAuthConfirm = 4,
  kSwapReply = 5,
};

struct PushMessage {
  NodeId sender;

  friend bool operator==(const PushMessage&, const PushMessage&) = default;
};

struct PullRequest {
  NodeId sender;
  crypto::AuthChallenge challenge;

  friend bool operator==(const PullRequest& a, const PullRequest& b) {
    return a.sender == b.sender && a.challenge.r_a == b.challenge.r_a;
  }
};

struct PullReply {
  NodeId sender;
  crypto::AuthResponse auth;
  std::vector<NodeId> view;

  friend bool operator==(const PullReply& a, const PullReply& b) {
    return a.sender == b.sender && a.auth.r_b == b.auth.r_b &&
           a.auth.proof_b == b.auth.proof_b && a.view == b.view;
  }
};

struct AuthConfirm {
  NodeId sender;
  crypto::AuthConfirm confirm;
  /// Present iff the initiator established mutual trust: half of its view
  /// (with a self-link inserted, Jelasity framework criterion 2).
  std::optional<std::vector<NodeId>> swap_offer;

  friend bool operator==(const AuthConfirm& a, const AuthConfirm& b) {
    return a.sender == b.sender && a.confirm.proof_a == b.confirm.proof_a &&
           a.swap_offer == b.swap_offer;
  }
};

struct SwapReply {
  NodeId sender;
  std::vector<NodeId> swap_half;

  friend bool operator==(const SwapReply&, const SwapReply&) = default;
};

using Message = std::variant<PushMessage, PullRequest, PullReply, AuthConfirm, SwapReply>;

[[nodiscard]] MsgType type_of(const Message& m);

/// Serializes a message with its type tag.
[[nodiscard]] std::vector<std::uint8_t> encode(const Message& m);

/// Allocation-free encode for hot paths: clears `out` (keeping capacity)
/// and serializes into it. In steady state — once `out` has grown to the
/// largest message it carries — this performs zero heap allocations.
void encode_into(const Message& m, std::vector<std::uint8_t>& out);

/// Parses a message; throws WireError on malformed input.
[[nodiscard]] Message decode(const std::vector<std::uint8_t>& bytes);
[[nodiscard]] Message decode(const std::uint8_t* data, std::size_t len);

/// Allocation-free decode for hot paths: parses into `out`, reusing the
/// held alternative's vector capacity when the wire type matches what `out`
/// already holds (the common round-trip case). On WireError `out` may be
/// left partially overwritten — callers must treat the message as dropped.
void decode_into(const std::uint8_t* data, std::size_t len, Message& out);

}  // namespace raptee::wire
