#include "wire/message.hpp"

namespace raptee::wire {

namespace {

// Defensive bound on view sizes accepted from the network; a Byzantine node
// cannot make us allocate unbounded memory.
constexpr std::size_t kMaxViewEntries = 1 << 16;

void put_push(Writer& w, const PushMessage& m) { w.node_id(m.sender); }

void get_push(Reader& r, PushMessage& m) { m.sender = r.node_id(); }

void put_pull_request(Writer& w, const PullRequest& m) {
  w.node_id(m.sender);
  w.fixed(m.challenge.r_a);
}

void get_pull_request(Reader& r, PullRequest& m) {
  m.sender = r.node_id();
  m.challenge.r_a = r.fixed<16>();
}

void put_pull_reply(Writer& w, const PullReply& m) {
  w.node_id(m.sender);
  w.fixed(m.auth.r_b);
  w.fixed(m.auth.proof_b);
  w.node_ids(m.view);
}

void get_pull_reply(Reader& r, PullReply& m) {
  m.sender = r.node_id();
  m.auth.r_b = r.fixed<16>();
  m.auth.proof_b = r.fixed<32>();
  r.node_ids_into(m.view, kMaxViewEntries);
}

void put_auth_confirm(Writer& w, const AuthConfirm& m) {
  w.node_id(m.sender);
  w.fixed(m.confirm.proof_a);
  w.u8(m.swap_offer.has_value() ? 1 : 0);
  if (m.swap_offer) w.node_ids(*m.swap_offer);
}

void get_auth_confirm(Reader& r, AuthConfirm& m) {
  m.sender = r.node_id();
  m.confirm.proof_a = r.fixed<32>();
  const std::uint8_t has_offer = r.u8();
  if (has_offer > 1) throw WireError("invalid swap_offer flag");
  if (has_offer) {
    if (!m.swap_offer) m.swap_offer.emplace();
    r.node_ids_into(*m.swap_offer, kMaxViewEntries);
  } else {
    m.swap_offer.reset();
  }
}

void put_swap_reply(Writer& w, const SwapReply& m) {
  w.node_id(m.sender);
  w.node_ids(m.swap_half);
}

void get_swap_reply(Reader& r, SwapReply& m) {
  m.sender = r.node_id();
  r.node_ids_into(m.swap_half, kMaxViewEntries);
}

/// Gets a mutable reference to the `T` alternative of `out`, reusing the
/// held value (and thus its vectors' capacity) when the type matches.
template <typename T>
T& alternative_of(Message& out) {
  if (auto* held = std::get_if<T>(&out)) return *held;
  return out.emplace<T>();
}

}  // namespace

MsgType type_of(const Message& m) {
  struct Visitor {
    MsgType operator()(const PushMessage&) const { return MsgType::kPush; }
    MsgType operator()(const PullRequest&) const { return MsgType::kPullRequest; }
    MsgType operator()(const PullReply&) const { return MsgType::kPullReply; }
    MsgType operator()(const AuthConfirm&) const { return MsgType::kAuthConfirm; }
    MsgType operator()(const SwapReply&) const { return MsgType::kSwapReply; }
  };
  return std::visit(Visitor{}, m);
}

std::vector<std::uint8_t> encode(const Message& m) {
  std::vector<std::uint8_t> out;
  encode_into(m, out);
  return out;
}

void encode_into(const Message& m, std::vector<std::uint8_t>& out) {
  Writer w(std::move(out));
  w.u8(static_cast<std::uint8_t>(type_of(m)));
  std::visit(
      [&w](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, PushMessage>) put_push(w, msg);
        else if constexpr (std::is_same_v<T, PullRequest>) put_pull_request(w, msg);
        else if constexpr (std::is_same_v<T, PullReply>) put_pull_reply(w, msg);
        else if constexpr (std::is_same_v<T, AuthConfirm>) put_auth_confirm(w, msg);
        else if constexpr (std::is_same_v<T, SwapReply>) put_swap_reply(w, msg);
      },
      m);
  out = w.take();
}

void decode_into(const std::uint8_t* data, std::size_t len, Message& out) {
  Reader r(data, len);
  const auto type = static_cast<MsgType>(r.u8());
  switch (type) {
    case MsgType::kPush: get_push(r, alternative_of<PushMessage>(out)); break;
    case MsgType::kPullRequest:
      get_pull_request(r, alternative_of<PullRequest>(out));
      break;
    case MsgType::kPullReply: get_pull_reply(r, alternative_of<PullReply>(out)); break;
    case MsgType::kAuthConfirm:
      get_auth_confirm(r, alternative_of<AuthConfirm>(out));
      break;
    case MsgType::kSwapReply: get_swap_reply(r, alternative_of<SwapReply>(out)); break;
    default: throw WireError("unknown message type " + std::to_string(static_cast<int>(type)));
  }
  r.expect_done();
}

Message decode(const std::uint8_t* data, std::size_t len) {
  Message m;
  decode_into(data, len, m);
  return m;
}

Message decode(const std::vector<std::uint8_t>& bytes) {
  return decode(bytes.data(), bytes.size());
}

}  // namespace raptee::wire
