#include "wire/message.hpp"

namespace raptee::wire {

namespace {

// Defensive bound on view sizes accepted from the network; a Byzantine node
// cannot make us allocate unbounded memory.
constexpr std::size_t kMaxViewEntries = 1 << 16;

void put_push(Writer& w, const PushMessage& m) { w.node_id(m.sender); }

PushMessage get_push(Reader& r) {
  PushMessage m;
  m.sender = r.node_id();
  return m;
}

void put_pull_request(Writer& w, const PullRequest& m) {
  w.node_id(m.sender);
  w.fixed(m.challenge.r_a);
}

PullRequest get_pull_request(Reader& r) {
  PullRequest m;
  m.sender = r.node_id();
  m.challenge.r_a = r.fixed<16>();
  return m;
}

void put_pull_reply(Writer& w, const PullReply& m) {
  w.node_id(m.sender);
  w.fixed(m.auth.r_b);
  w.fixed(m.auth.proof_b);
  w.node_ids(m.view);
}

PullReply get_pull_reply(Reader& r) {
  PullReply m;
  m.sender = r.node_id();
  m.auth.r_b = r.fixed<16>();
  m.auth.proof_b = r.fixed<32>();
  m.view = r.node_ids(kMaxViewEntries);
  return m;
}

void put_auth_confirm(Writer& w, const AuthConfirm& m) {
  w.node_id(m.sender);
  w.fixed(m.confirm.proof_a);
  w.u8(m.swap_offer.has_value() ? 1 : 0);
  if (m.swap_offer) w.node_ids(*m.swap_offer);
}

AuthConfirm get_auth_confirm(Reader& r) {
  AuthConfirm m;
  m.sender = r.node_id();
  m.confirm.proof_a = r.fixed<32>();
  const std::uint8_t has_offer = r.u8();
  if (has_offer > 1) throw WireError("invalid swap_offer flag");
  if (has_offer) m.swap_offer = r.node_ids(kMaxViewEntries);
  return m;
}

void put_swap_reply(Writer& w, const SwapReply& m) {
  w.node_id(m.sender);
  w.node_ids(m.swap_half);
}

SwapReply get_swap_reply(Reader& r) {
  SwapReply m;
  m.sender = r.node_id();
  m.swap_half = r.node_ids(kMaxViewEntries);
  return m;
}

}  // namespace

MsgType type_of(const Message& m) {
  struct Visitor {
    MsgType operator()(const PushMessage&) const { return MsgType::kPush; }
    MsgType operator()(const PullRequest&) const { return MsgType::kPullRequest; }
    MsgType operator()(const PullReply&) const { return MsgType::kPullReply; }
    MsgType operator()(const AuthConfirm&) const { return MsgType::kAuthConfirm; }
    MsgType operator()(const SwapReply&) const { return MsgType::kSwapReply; }
  };
  return std::visit(Visitor{}, m);
}

std::vector<std::uint8_t> encode(const Message& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type_of(m)));
  std::visit(
      [&w](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, PushMessage>) put_push(w, msg);
        else if constexpr (std::is_same_v<T, PullRequest>) put_pull_request(w, msg);
        else if constexpr (std::is_same_v<T, PullReply>) put_pull_reply(w, msg);
        else if constexpr (std::is_same_v<T, AuthConfirm>) put_auth_confirm(w, msg);
        else if constexpr (std::is_same_v<T, SwapReply>) put_swap_reply(w, msg);
      },
      m);
  return w.take();
}

Message decode(const std::uint8_t* data, std::size_t len) {
  Reader r(data, len);
  const auto type = static_cast<MsgType>(r.u8());
  Message m;
  switch (type) {
    case MsgType::kPush: m = get_push(r); break;
    case MsgType::kPullRequest: m = get_pull_request(r); break;
    case MsgType::kPullReply: m = get_pull_reply(r); break;
    case MsgType::kAuthConfirm: m = get_auth_confirm(r); break;
    case MsgType::kSwapReply: m = get_swap_reply(r); break;
    default: throw WireError("unknown message type " + std::to_string(static_cast<int>(type)));
  }
  r.expect_done();
  return m;
}

Message decode(const std::vector<std::uint8_t>& bytes) {
  return decode(bytes.data(), bytes.size());
}

}  // namespace raptee::wire
