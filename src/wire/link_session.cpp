#include "wire/link_session.hpp"

#include <string>
#include <utility>

namespace raptee::wire {

namespace {

std::uint64_t pair_key(NodeId lo, NodeId hi) {
  return (static_cast<std::uint64_t>(lo.value) << 32) | hi.value;
}

}  // namespace

LinkTable::LinkTable(const crypto::SymmetricKey& master, bool cache)
    : master_(master), cache_(cache) {}

std::uint32_t LinkTable::epoch_of(NodeId node) const {
  return node.value < epochs_.size() ? epochs_[node.value] : 0;
}

std::unique_ptr<LinkSession> LinkTable::make_session(NodeId lo, NodeId hi) {
  // Both endpoints of a deployed link would run a key agreement; the
  // simulator models the result: a per-establishment link secret known to
  // both (and only both) endpoints. The per-pair establishment counter
  // uniquifies re-established pairs (a rekeyed session never reuses a
  // keystream) while staying a pure function of the pair's history — two
  // independent tables seeded with the same master key agree on every key.
  ++derivations_;
  const std::uint32_t establishment = ++establishments_[pair_key(lo, hi)];
  const std::string label = "link-" + std::to_string(lo.value) + "-" +
                            std::to_string(hi.value) + "#" +
                            std::to_string(establishment);
  auto session = std::make_unique<LinkSession>(master_.derive(label), lo);
  session->epoch_lo = epoch_of(lo);
  session->epoch_hi = epoch_of(hi);
  return session;
}

LinkSession& LinkTable::session(NodeId a, NodeId b, std::uint64_t round) {
  const NodeId lo = a.value < b.value ? a : b;
  const NodeId hi = a.value < b.value ? b : a;
  const std::lock_guard<std::mutex> lock(mu_);
  if (!cache_) {
    transient_ = make_session(lo, hi);
    return *transient_;
  }
  const std::uint64_t key = pair_key(lo, hi);
  const auto it = sessions_.find(key);
  if (it != sessions_.end() && it->second->epoch_lo == epoch_of(lo) &&
      it->second->epoch_hi == epoch_of(hi)) {
    it->second->last_used = round;
    return *it->second;
  }
  if (it != sessions_.end()) sessions_.erase(it);
  LinkSession& fresh = *sessions_.emplace(key, make_session(lo, hi)).first->second;
  fresh.last_used = round;
  return fresh;
}

LinkSession& LinkTable::establish(NodeId a, NodeId b, std::uint64_t token) {
  const NodeId lo = a.value < b.value ? a : b;
  const NodeId hi = a.value < b.value ? b : a;
  const std::lock_guard<std::mutex> lock(mu_);
  ++derivations_;
  // The token-labelled secret is a pure function of (master, pair, token):
  // both endpoints of the handshake that produced `token` derive it
  // identically from their own tables.
  const std::string label = "link-" + std::to_string(lo.value) + "-" +
                            std::to_string(hi.value) + "@" + std::to_string(token);
  auto session = std::make_unique<LinkSession>(master_.derive(label), lo);
  session->epoch_lo = epoch_of(lo);
  session->epoch_hi = epoch_of(hi);
  auto& slot = sessions_[pair_key(lo, hi)];
  slot = std::move(session);
  return *slot;
}

void LinkTable::invalidate(NodeId node) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (node.value >= epochs_.size()) epochs_.resize(node.value + 1, 0);
  ++epochs_[node.value];
}

void LinkTable::invalidate_pair(NodeId a, NodeId b) {
  const NodeId lo = a.value < b.value ? a : b;
  const NodeId hi = a.value < b.value ? b : a;
  const std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(pair_key(lo, hi));
  transient_.reset();
}

void LinkTable::invalidate_session(NodeId a, NodeId b, const LinkSession* expected) {
  const NodeId lo = a.value < b.value ? a : b;
  const NodeId hi = a.value < b.value ? b : a;
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(pair_key(lo, hi));
  if (it != sessions_.end() && it->second.get() == expected) sessions_.erase(it);
}

void LinkTable::retire_idle(std::uint64_t round, std::uint64_t max_idle) {
  const std::lock_guard<std::mutex> lock(mu_);
  // raptee-lint: allow(no-unordered-iteration) pure filter; which sessions retire depends only on per-session round stamps, not visit order
  std::erase_if(sessions_, [&](const auto& entry) {
    return entry.second->last_used + max_idle < round;
  });
}

std::size_t LinkTable::active_sessions() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::uint64_t LinkTable::derivations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return derivations_;
}

}  // namespace raptee::wire
