#include "wire/link_session.hpp"

#include <string>
#include <utility>

namespace raptee::wire {

namespace {

std::uint64_t pair_key(NodeId lo, NodeId hi) {
  return (static_cast<std::uint64_t>(lo.value) << 32) | hi.value;
}

}  // namespace

LinkTable::LinkTable(const crypto::SymmetricKey& master, bool cache)
    : master_(master), cache_(cache) {}

std::uint32_t LinkTable::epoch_of(NodeId node) const {
  return node.value < epochs_.size() ? epochs_[node.value] : 0;
}

LinkSession LinkTable::make_session(NodeId lo, NodeId hi) {
  // Both endpoints of a deployed link would run a key agreement; the
  // simulator models the result: a per-establishment link secret known to
  // both (and only both) endpoints. The establishment counter uniquifies
  // re-established pairs so a rekeyed session never reuses a keystream.
  ++derivations_;
  const std::string label = "link-" + std::to_string(lo.value) + "-" +
                            std::to_string(hi.value) + "#" +
                            std::to_string(derivations_);
  LinkSession session(master_.derive(label), lo);
  session.epoch_lo = epoch_of(lo);
  session.epoch_hi = epoch_of(hi);
  return session;
}

LinkSession& LinkTable::session(NodeId a, NodeId b, std::uint64_t round) {
  const NodeId lo = a.value < b.value ? a : b;
  const NodeId hi = a.value < b.value ? b : a;
  if (!cache_) {
    transient_.emplace(make_session(lo, hi));
    return *transient_;
  }
  const std::uint64_t key = pair_key(lo, hi);
  const auto it = sessions_.find(key);
  if (it != sessions_.end() && it->second.epoch_lo == epoch_of(lo) &&
      it->second.epoch_hi == epoch_of(hi)) {
    it->second.last_used = round;
    return it->second;
  }
  if (it != sessions_.end()) sessions_.erase(it);
  LinkSession& fresh = sessions_.emplace(key, make_session(lo, hi)).first->second;
  fresh.last_used = round;
  return fresh;
}

void LinkTable::invalidate(NodeId node) {
  if (node.value >= epochs_.size()) epochs_.resize(node.value + 1, 0);
  ++epochs_[node.value];
}

void LinkTable::invalidate_pair(NodeId a, NodeId b) {
  const NodeId lo = a.value < b.value ? a : b;
  const NodeId hi = a.value < b.value ? b : a;
  sessions_.erase(pair_key(lo, hi));
  transient_.reset();
}

void LinkTable::retire_idle(std::uint64_t round, std::uint64_t max_idle) {
  std::erase_if(sessions_, [&](const auto& entry) {
    return entry.second.last_used + max_idle < round;
  });
}

}  // namespace raptee::wire
