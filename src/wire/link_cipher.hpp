// Authenticated link encryption: AES-256-CTR + HMAC-SHA-256,
// encrypt-then-MAC, with an explicit 64-bit sequence number as nonce.
//
// Models the paper's requirement that "communications between any two
// nodes, including trusted ones, are cyphered with symmetric encryption to
// protect against an eavesdropping adversary" (§III-B). The simulator can
// route every message leg through a LinkCipher pair (sealed mode) or skip
// the byte round-trip (fast mode) — tests assert both modes deliver
// identical payloads.
//
// Frame layout: seq(8) || ciphertext || tag(32).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/key.hpp"

namespace raptee::wire {

class LinkCipher {
 public:
  /// `secret` is the shared link secret; independent encryption and MAC
  /// subkeys are derived from it. `direction` domain-separates the two
  /// directions of a duplex link so A->B and B->A never reuse a keystream.
  LinkCipher(const crypto::SymmetricKey& secret, std::uint8_t direction);

  /// Seals a plaintext frame; consumes one sequence number.
  [[nodiscard]] std::vector<std::uint8_t> seal(const std::vector<std::uint8_t>& plaintext);
  /// Allocation-free variant: clears and refills the caller-owned `frame`
  /// (its capacity amortizes across legs — in steady state sealing
  /// allocates nothing).
  void seal_into(const std::uint8_t* plaintext, std::size_t len,
                 std::vector<std::uint8_t>& frame);

  /// Opens a frame; returns nullopt on any authenticity/ordering failure
  /// (bad tag, truncated frame, replayed or reordered sequence number).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> open(
      const std::vector<std::uint8_t>& frame);
  /// Allocation-free variant: on success fills the caller-owned `plaintext`
  /// and returns true; on failure returns false and leaves `plaintext`
  /// unspecified. Never allocates once `plaintext` has warmed capacity.
  [[nodiscard]] bool open_into(const std::uint8_t* frame, std::size_t len,
                               std::vector<std::uint8_t>& plaintext);

  [[nodiscard]] std::uint64_t sent() const { return send_seq_; }
  [[nodiscard]] std::uint64_t received() const { return recv_seq_; }

 private:
  [[nodiscard]] crypto::Block counter_block_for(std::uint64_t seq) const;

  crypto::Aes aes_;
  std::vector<std::uint8_t> mac_key_;
  std::uint8_t direction_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

/// Convenience: a duplex pair of ciphers for one link endpoint.
struct DuplexLink {
  LinkCipher tx;
  LinkCipher rx;

  /// `initiator` selects which direction subkey this endpoint transmits on.
  DuplexLink(const crypto::SymmetricKey& secret, bool initiator)
      : tx(secret, initiator ? 0 : 1), rx(secret, initiator ? 1 : 0) {}
};

}  // namespace raptee::wire
