// Bounds-checked binary serialization primitives.
//
// Writer appends to a growable byte vector; Reader consumes a non-owning
// span and *never* reads past the end — malformed input surfaces as
// WireError, which the network layer treats as a dropped message (a
// Byzantine peer may send arbitrary bytes).
//
// Encoding conventions: little-endian fixed-width integers, LEB128 varints
// for counts, length-prefixed byte strings.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace raptee::wire {

/// Thrown on malformed or truncated input.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  Writer() = default;
  /// Adopts `storage` as the output buffer (cleared, capacity kept) so hot
  /// paths can reuse one scratch vector across messages: move a vector in,
  /// encode, take() it back — zero heap allocations in steady state.
  explicit Writer(std::vector<std::uint8_t> storage) : buf_(std::move(storage)) {
    buf_.clear();
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// Drops the content, keeps the capacity.
  void clear() { buf_.clear(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Unsigned LEB128.
  void varint(std::uint64_t v);
  void raw(const std::uint8_t* data, std::size_t len);
  /// varint length prefix + raw bytes.
  void bytes_field(const std::vector<std::uint8_t>& v);
  void node_id(NodeId id) { u32(id.value); }

  template <std::size_t N>
  void fixed(const std::array<std::uint8_t, N>& a) {
    raw(a.data(), N);
  }

  void node_ids(const std::vector<NodeId>& ids) {
    varint(ids.size());
    for (NodeId id : ids) node_id(id);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}
  explicit Reader(const std::vector<std::uint8_t>& v) : Reader(v.data(), v.size()) {}

  [[nodiscard]] std::size_t remaining() const { return len_ - pos_; }
  [[nodiscard]] bool done() const { return pos_ == len_; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  void raw(std::uint8_t* out, std::size_t len);
  std::vector<std::uint8_t> bytes_field();
  NodeId node_id() { return NodeId{u32()}; }

  template <std::size_t N>
  std::array<std::uint8_t, N> fixed() {
    std::array<std::uint8_t, N> a{};
    raw(a.data(), N);
    return a;
  }

  /// Reads a count-prefixed NodeId list; `max_count` guards against a
  /// Byzantine length bomb.
  std::vector<NodeId> node_ids(std::size_t max_count = 1 << 20);
  /// Allocation-free variant: clears and refills `out`, whose capacity
  /// amortizes across messages on the decode hot path.
  void node_ids_into(std::vector<NodeId>& out, std::size_t max_count = 1 << 20);

  /// Throws unless the whole input has been consumed (trailing garbage is
  /// treated as malformed).
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

}  // namespace raptee::wire
