#include "wire/buffer.hpp"

#include <cstring>

namespace raptee::wire {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::raw(const std::uint8_t* data, std::size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void Writer::bytes_field(const std::vector<std::uint8_t>& v) {
  varint(v.size());
  raw(v.data(), v.size());
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) {
    throw WireError("truncated input: need " + std::to_string(n) + " bytes, have " +
                    std::to_string(remaining()));
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    const std::uint8_t byte = data_[pos_++];
    if (shift == 63 && (byte & 0x7E)) throw WireError("varint overflow");
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) return v;
    shift += 7;
    if (shift > 63) throw WireError("varint too long");
  }
}

void Reader::raw(std::uint8_t* out, std::size_t len) {
  need(len);
  std::memcpy(out, data_ + pos_, len);
  pos_ += len;
}

std::vector<std::uint8_t> Reader::bytes_field() {
  const std::uint64_t len = varint();
  if (len > remaining()) throw WireError("bytes field longer than input");
  std::vector<std::uint8_t> out(static_cast<std::size_t>(len));
  raw(out.data(), out.size());
  return out;
}

std::vector<NodeId> Reader::node_ids(std::size_t max_count) {
  std::vector<NodeId> ids;
  node_ids_into(ids, max_count);
  return ids;
}

void Reader::node_ids_into(std::vector<NodeId>& out, std::size_t max_count) {
  const std::uint64_t count = varint();
  if (count > max_count) throw WireError("node id list exceeds bound");
  if (count * 4 > remaining()) throw WireError("node id list longer than input");
  out.clear();
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(node_id());
}

void Reader::expect_done() const {
  if (!done()) throw WireError("trailing bytes: " + std::to_string(remaining()));
}

}  // namespace raptee::wire
