#include "wire/link_cipher.hpp"

#include <cstring>

namespace raptee::wire {

namespace {

crypto::SymmetricKey enc_subkey(const crypto::SymmetricKey& secret, std::uint8_t dir) {
  return secret.derive(dir == 0 ? "raptee-link-enc-0" : "raptee-link-enc-1");
}

crypto::SymmetricKey mac_subkey(const crypto::SymmetricKey& secret, std::uint8_t dir) {
  return secret.derive(dir == 0 ? "raptee-link-mac-0" : "raptee-link-mac-1");
}

}  // namespace

LinkCipher::LinkCipher(const crypto::SymmetricKey& secret, std::uint8_t direction)
    : aes_(crypto::Aes::aes256(enc_subkey(secret, direction).bytes())),
      mac_key_(mac_subkey(secret, direction).to_vector()),
      direction_(direction) {}

crypto::Block LinkCipher::counter_block_for(std::uint64_t seq) const {
  // nonce = direction(1) || zeros(3) || seq(8, LE); counter portion = 0.
  std::array<std::uint8_t, 12> nonce{};
  nonce[0] = direction_;
  for (int i = 0; i < 8; ++i) nonce[4 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
  return crypto::make_counter_block(nonce);
}

std::vector<std::uint8_t> LinkCipher::seal(const std::vector<std::uint8_t>& plaintext) {
  std::vector<std::uint8_t> frame;
  seal_into(plaintext.data(), plaintext.size(), frame);
  return frame;
}

void LinkCipher::seal_into(const std::uint8_t* plaintext, std::size_t len,
                           std::vector<std::uint8_t>& frame) {
  const std::uint64_t seq = send_seq_++;
  frame.clear();
  frame.reserve(8 + len + 32);
  for (int i = 0; i < 8; ++i) frame.push_back(static_cast<std::uint8_t>(seq >> (8 * i)));

  // Encrypt straight into the frame: append the plaintext, then XOR the
  // keystream over it in place.
  frame.insert(frame.end(), plaintext, plaintext + len);
  crypto::AesCtr ctr(aes_, counter_block_for(seq));
  ctr.process(frame.data() + 8, len);

  crypto::HmacSha256 mac(mac_key_);
  mac.update(frame.data(), frame.size());
  const crypto::Digest256 tag = mac.finish();
  frame.insert(frame.end(), tag.begin(), tag.end());
}

std::optional<std::vector<std::uint8_t>> LinkCipher::open(
    const std::vector<std::uint8_t>& frame) {
  std::vector<std::uint8_t> pt;
  if (!open_into(frame.data(), frame.size(), pt)) return std::nullopt;
  return pt;
}

bool LinkCipher::open_into(const std::uint8_t* frame, std::size_t len,
                           std::vector<std::uint8_t>& plaintext) {
  if (len < 8 + 32) return false;
  const std::size_t body_len = len - 32;

  crypto::HmacSha256 mac(mac_key_);
  mac.update(frame, body_len);
  const crypto::Digest256 expected = mac.finish();
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < 32; ++i) diff |= frame[body_len + i] ^ expected[i];
  if (diff != 0) return false;

  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) seq |= static_cast<std::uint64_t>(frame[i]) << (8 * i);
  // Strictly in-order delivery: anything else is a replay or reorder.
  if (seq != recv_seq_) return false;
  ++recv_seq_;

  plaintext.assign(frame + 8, frame + body_len);
  crypto::AesCtr ctr(aes_, counter_block_for(seq));
  ctr.process(plaintext);
  return true;
}

}  // namespace raptee::wire
