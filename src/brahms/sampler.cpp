#include "brahms/sampler.hpp"

#include <algorithm>

namespace raptee::brahms {

SamplerArray::SamplerArray(std::size_t l2, Rng& rng) {
  samplers_.reserve(l2);
  for (std::size_t i = 0; i < l2; ++i) samplers_.emplace_back(rng.next());
}

std::vector<NodeId> SamplerArray::sample_list() const {
  std::vector<NodeId> out;
  out.reserve(samplers_.size());
  for (const auto& s : samplers_) {
    if (s.holds_sample()) out.push_back(s.sample());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<NodeId> SamplerArray::history_sample(std::size_t k, Rng& rng) const {
  return rng.sample(sample_list(), k);
}

std::size_t SamplerArray::validate(const std::function<bool(NodeId)>& alive, Rng& rng) {
  std::size_t reinitialized = 0;
  for (auto& s : samplers_) {
    if (s.holds_sample() && !alive(s.sample())) {
      s.reinit(rng.next());
      ++reinitialized;
    }
  }
  return reinitialized;
}

}  // namespace raptee::brahms
