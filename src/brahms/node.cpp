#include "brahms/node.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/assert.hpp"

namespace raptee::brahms {

namespace {

/// Deduplicates preserving first occurrence, dropping `self`.
std::vector<NodeId> dedup_excluding(const std::vector<NodeId>& ids, NodeId self) {
  std::vector<NodeId> out;
  out.reserve(ids.size());
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(ids.size() * 2);
  for (NodeId id : ids) {
    if (id == self || !id.valid()) continue;
    if (seen.insert(id.value).second) out.push_back(id);
  }
  return out;
}

}  // namespace

BrahmsNode::BrahmsNode(NodeId self, BrahmsConfig config,
                       std::unique_ptr<IAuthenticator> auth, Rng rng,
                       std::function<bool(NodeId)> alive_probe)
    : self_(self),
      config_(config),
      auth_(std::move(auth)),
      rng_(rng),
      alive_probe_(std::move(alive_probe)),
      view_(config.params.l1),
      samplers_(config.params.l2, rng_) {
  config_.params.validate();
  RAPTEE_REQUIRE(auth_ != nullptr, "BrahmsNode requires an authenticator");
}

void BrahmsNode::bootstrap(const std::vector<NodeId>& initial_peers) {
  view_.clear();
  for (NodeId peer : dedup_excluding(initial_peers, self_)) {
    if (view_.full()) break;
    view_.insert(peer, 0);
  }
  // The bootstrap handout also primes the samplers: a joining node treats
  // it as its first received ID stream.
  for (const auto& entry : view_.entries()) samplers_.feed(entry.id);
}

void BrahmsNode::begin_round(Round /*r*/) {
  pushed_.clear();
  raw_push_count_ = 0;
  pulled_.clear();
  initiator_slot_ = {};
  responder_slot_ = {};
  telemetry_ = {};
  view_.age_all();
}

std::vector<NodeId> BrahmsNode::push_targets() {
  std::vector<NodeId> targets;
  push_targets(targets);
  return targets;
}

void BrahmsNode::push_targets(std::vector<NodeId>& out) {
  out.clear();
  if (view_.empty()) return;
  const std::size_t fanout = config_.params.push_slice();
  out.reserve(fanout);
  for (std::size_t i = 0; i < fanout; ++i) out.push_back(view_.pick_id(rng_));
}

wire::PushMessage BrahmsNode::make_push() { return wire::PushMessage{self_}; }

void BrahmsNode::on_push(const wire::PushMessage& push) {
  ++raw_push_count_;
  if (push.sender.valid() && push.sender != self_) pushed_.push_back(push.sender);
}

std::vector<NodeId> BrahmsNode::pull_targets() {
  std::vector<NodeId> targets;
  pull_targets(targets);
  return targets;
}

void BrahmsNode::pull_targets(std::vector<NodeId>& out) {
  out.clear();
  if (view_.empty()) return;
  const std::size_t fanout = config_.params.pull_slice();
  out.reserve(fanout);
  for (std::size_t i = 0; i < fanout; ++i) out.push_back(view_.pick_id(rng_));
}

wire::PullRequest BrahmsNode::open_pull(NodeId target) {
  RAPTEE_ASSERT_MSG(!initiator_slot_.active, "overlapping initiator exchanges");
  initiator_slot_.active = true;
  initiator_slot_.target = target;
  initiator_slot_.challenge = auth_->make_challenge();
  return wire::PullRequest{self_, initiator_slot_.challenge};
}

wire::PullReply BrahmsNode::answer_pull(const wire::PullRequest& request) {
  responder_slot_.active = true;
  responder_slot_.peer = request.sender;
  responder_slot_.challenge = request.challenge;
  responder_slot_.response = auth_->make_response(request.challenge);
  ++telemetry_.pulls_answered;
  // Pull answers carry the full current view (paper §III-A).
  return wire::PullReply{self_, responder_slot_.response, view_.ids()};
}

wire::AuthConfirm BrahmsNode::process_pull_reply(const wire::PullReply& reply) {
  RAPTEE_ASSERT_MSG(initiator_slot_.active, "pull reply without open exchange");
  initiator_slot_.active = false;

  wire::AuthConfirm confirm;
  confirm.sender = self_;
  const bool trusted =
      auth_->verify_response(initiator_slot_.challenge, reply.auth, &confirm.confirm);

  PullRecord record;
  record.peer = reply.sender;
  record.trusted = trusted;
  record.ids = reply.view;
  pulled_.push_back(std::move(record));
  ++telemetry_.pulls_completed;
  telemetry_.pulled_ids_total += reply.view.size();

  if (trusted) {
    ++telemetry_.trusted_exchanges;
    confirm.swap_offer = make_swap_offer(reply.sender);
  }
  return confirm;
}

std::optional<wire::SwapReply> BrahmsNode::process_confirm(
    const wire::AuthConfirm& confirm) {
  if (!responder_slot_.active) return std::nullopt;  // stray confirm: ignore
  responder_slot_.active = false;
  const bool initiator_trusted = auth_->verify_confirm(
      responder_slot_.challenge, responder_slot_.response, confirm.confirm);
  if (!initiator_trusted || !confirm.swap_offer) return std::nullopt;
  auto half = accept_swap_offer(confirm.sender, *confirm.swap_offer);
  if (!half) return std::nullopt;
  return wire::SwapReply{self_, std::move(*half)};
}

void BrahmsNode::process_swap_reply(const wire::SwapReply& reply) {
  integrate_swap_reply(reply.sender, reply.swap_half);
}

void BrahmsNode::on_pull_timeout(NodeId /*target*/) {
  // Brahms keeps unresponsive entries (the history sample washes them out);
  // the initiator slot is simply abandoned.
  initiator_slot_ = {};
}

std::optional<std::vector<NodeId>> BrahmsNode::make_swap_offer(NodeId /*peer*/) {
  return std::nullopt;
}

std::optional<std::vector<NodeId>> BrahmsNode::accept_swap_offer(
    NodeId /*peer*/, const std::vector<NodeId>& /*offer*/) {
  return std::nullopt;
}

void BrahmsNode::integrate_swap_reply(NodeId /*peer*/,
                                      const std::vector<NodeId>& /*half*/) {}

BrahmsNode::PulledContribution BrahmsNode::process_pulled(
    const std::vector<PullRecord>& records) {
  PulledContribution out;
  for (const auto& r : records) {
    out.sampler_ids.insert(out.sampler_ids.end(), r.ids.begin(), r.ids.end());
    // Plain Brahms draws no trusted/untrusted distinction and caps nothing.
    out.renewal_untrusted.insert(out.renewal_untrusted.end(), r.ids.begin(), r.ids.end());
  }
  return out;
}

void BrahmsNode::end_round(Round r) {
  telemetry_.pushes_received = raw_push_count_;

  // Eviction hook (RAPTEE) decides which pulled IDs survive and how much of
  // the β·l1 slice untrusted sources may fill.
  const PulledContribution pulled = process_pulled(pulled_);
  telemetry_.pulled_ids_kept =
      pulled.renewal_trusted.size() + pulled.renewal_untrusted.size();

  // Sampling component: the (filtered) received stream feeds every sampler,
  // independently of the blocking defence — min-wise sampling is unbiased
  // by construction, so it never needs to block. Feeding the deduplicated
  // stream is mathematically identical (a min-wise sampler is duplicate-
  // insensitive) and much cheaper.
  samplers_.feed_all(dedup_excluding(pushed_, self_));
  samplers_.feed_all(dedup_excluding(pulled.sampler_ids, self_));

  if (config_.sampler_validation_period != 0 && alive_probe_ &&
      r % config_.sampler_validation_period == 0) {
    samplers_.validate(alive_probe_, rng_);
  }

  // Defence (ii): skip the view update entirely when flooded, or when
  // either contribution stream is empty (Brahms' update rule).
  const bool flooded = raw_push_count_ > config_.params.push_slice();
  const bool starved = pushed_.empty() || pulled_.empty();
  telemetry_.update_blocked = flooded || starved;
  if (!telemetry_.update_blocked) {
    renew_view(pulled);
    after_view_update();
  }
}

void BrahmsNode::renew_view(const PulledContribution& pulled) {
  const Params& p = config_.params;

  std::vector<NodeId> next;
  next.reserve(p.l1);
  std::unordered_set<std::uint32_t> taken;
  taken.reserve(p.l1 * 2);

  // rand(stream, k): sample k entries from the raw ID stream *with its
  // multiplicities* (shuffle and walk, skipping duplicates already chosen).
  // Deduplicating first would erase exactly the over-representation the
  // Brahms analysis reasons about — the adversary's pull answers repeat its
  // member IDs massively, and the defence quantifies, not erases, that bias.
  auto fill_from_stream = [&](std::vector<NodeId> stream, std::size_t want) {
    rng_.shuffle(stream);
    std::size_t added = 0;
    for (NodeId id : stream) {
      if (added >= want || next.size() >= p.l1) break;
      if (id == self_ || !id.valid()) continue;
      if (taken.insert(id.value).second) {
        next.push_back(id);
        ++added;
      }
    }
  };

  fill_from_stream(pushed_, p.push_slice());

  // β·l1 pulled slice: one joint stream of (id, untrusted?) entries,
  // shuffled together so trusted sources get no artificial priority; the
  // eviction cap bounds how many slots untrusted entries may take.
  {
    const std::size_t quota = p.pull_slice();
    const auto untrusted_cap = static_cast<std::size_t>(
        std::lround(pulled.untrusted_slice_cap * static_cast<double>(quota)));
    struct Tagged {
      NodeId id;
      bool untrusted;
    };
    std::vector<Tagged> stream;
    stream.reserve(pulled.renewal_trusted.size() + pulled.renewal_untrusted.size());
    for (NodeId id : pulled.renewal_trusted) stream.push_back({id, false});
    for (NodeId id : pulled.renewal_untrusted) stream.push_back({id, true});
    rng_.shuffle(stream);
    std::size_t added = 0, untrusted_added = 0;
    for (const Tagged& t : stream) {
      if (added >= quota || next.size() >= p.l1) break;
      if (t.id == self_ || !t.id.valid()) continue;
      if (t.untrusted && untrusted_added >= untrusted_cap) continue;
      if (taken.insert(t.id.value).second) {
        next.push_back(t.id);
        ++added;
        if (t.untrusted) ++untrusted_added;
      }
    }
  }

  for (NodeId id : samplers_.history_sample(p.history_slice(), rng_)) {
    if (next.size() >= p.l1) break;
    if (id != self_ && taken.insert(id.value).second) next.push_back(id);
  }

  // Shortfall rule (design decision D3): keep previous entries, freshest
  // first, until the view is full again.
  std::vector<gossip::ViewEntry> previous = view_.entries();
  std::sort(previous.begin(), previous.end(),
            [](const gossip::ViewEntry& a, const gossip::ViewEntry& b) {
              return a.age < b.age;
            });

  gossip::PartialView renewed(p.l1);
  for (NodeId id : next) renewed.insert(id, 0);
  for (const auto& entry : previous) {
    if (renewed.full()) break;
    renewed.insert(entry.id, entry.age);
  }
  view_ = std::move(renewed);
}

}  // namespace raptee::brahms
