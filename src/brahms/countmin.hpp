// Count-min sketch over the received ID stream — the paper's named future
// work (§VIII: Anceaume et al. "employ count-min sketches to unbias a
// biased stream of identifiers. Adopting a similar technique in RAPTEE
// could constitute interesting future work").
//
// CountMinSketch estimates per-ID arrival frequency in O(width·depth)
// memory with one-sided error (over-estimates only). StreamUnbiaser uses it
// to cap each ID's admission rate into the view-renewal stream at
// `cap_factor` times the median estimated frequency — the adversary's
// massively repeated IDs are clipped toward the honest level, while honest
// IDs (near the median) pass untouched.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "crypto/minwise.hpp"

namespace raptee::brahms {

class CountMinSketch {
 public:
  /// `width` counters per row, `depth` independent rows. Standard bounds:
  /// error ≤ e·total/width with probability 1 - (1/2)^depth.
  CountMinSketch(std::size_t width, std::size_t depth, Rng& seed_rng);

  void add(NodeId id, std::uint64_t count = 1);
  /// Point estimate (never under the true count).
  [[nodiscard]] std::uint64_t estimate(NodeId id) const;
  /// Total stream length seen.
  [[nodiscard]] std::uint64_t total() const { return total_; }

  void clear();
  /// Halves every counter — cheap exponential decay so old rounds fade.
  void decay();

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t depth() const { return rows_.size(); }

 private:
  [[nodiscard]] std::size_t slot(std::size_t row, NodeId id) const;

  std::size_t width_;
  std::vector<crypto::MinWiseHash> hashes_;
  std::vector<std::vector<std::uint64_t>> rows_;
  std::uint64_t total_ = 0;
};

/// Frequency-capping filter over a pulled-ID stream (RAPTEE extension E1).
class StreamUnbiaser {
 public:
  struct Config {
    std::size_t sketch_width = 256;
    std::size_t sketch_depth = 4;
    /// An ID may occupy at most cap_factor x the median per-ID frequency of
    /// the current stream.
    double cap_factor = 2.0;
    /// Decay the sketch every round so the window is effectively a few
    /// rounds long.
    bool decay_each_round = true;
  };

  StreamUnbiaser(Config config, Rng& seed_rng);

  /// Observes the round's stream and returns it with over-represented IDs
  /// clipped: each ID keeps at most cap(median) occurrences.
  [[nodiscard]] std::vector<NodeId> filter(const std::vector<NodeId>& stream);

  void next_round();

  [[nodiscard]] const CountMinSketch& sketch() const { return sketch_; }
  [[nodiscard]] std::uint64_t clipped_total() const { return clipped_; }

 private:
  Config config_;
  CountMinSketch sketch_;
  std::uint64_t clipped_ = 0;
};

}  // namespace raptee::brahms
