#include "brahms/countmin.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/assert.hpp"

namespace raptee::brahms {

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth, Rng& seed_rng)
    : width_(width) {
  RAPTEE_REQUIRE(width >= 2 && depth >= 1, "degenerate sketch " << width << "x" << depth);
  hashes_.reserve(depth);
  rows_.reserve(depth);
  for (std::size_t d = 0; d < depth; ++d) {
    hashes_.emplace_back(seed_rng.next());
    rows_.emplace_back(width, 0);
  }
}

std::size_t CountMinSketch::slot(std::size_t row, NodeId id) const {
  return static_cast<std::size_t>(hashes_[row](id) % width_);
}

void CountMinSketch::add(NodeId id, std::uint64_t count) {
  for (std::size_t d = 0; d < rows_.size(); ++d) rows_[d][slot(d, id)] += count;
  total_ += count;
}

std::uint64_t CountMinSketch::estimate(NodeId id) const {
  std::uint64_t best = ~0ull;
  for (std::size_t d = 0; d < rows_.size(); ++d) {
    best = std::min(best, rows_[d][slot(d, id)]);
  }
  return rows_.empty() ? 0 : best;
}

void CountMinSketch::clear() {
  for (auto& row : rows_) std::fill(row.begin(), row.end(), 0);
  total_ = 0;
}

void CountMinSketch::decay() {
  for (auto& row : rows_) {
    for (auto& counter : row) counter >>= 1;
  }
  total_ >>= 1;
}

StreamUnbiaser::StreamUnbiaser(Config config, Rng& seed_rng)
    : config_(config), sketch_(config.sketch_width, config.sketch_depth, seed_rng) {}

std::vector<NodeId> StreamUnbiaser::filter(const std::vector<NodeId>& stream) {
  if (stream.empty()) return {};
  for (NodeId id : stream) sketch_.add(id);

  // Median per-distinct-ID estimated frequency of this stream.
  std::unordered_map<std::uint32_t, std::uint64_t> estimates;
  estimates.reserve(stream.size());
  for (NodeId id : stream) {
    if (!estimates.count(id.value)) estimates[id.value] = sketch_.estimate(id);
  }
  std::vector<std::uint64_t> freqs;
  freqs.reserve(estimates.size());
  // raptee-lint: allow(no-unordered-iteration) feeds nth_element; the selected median is order-independent
  for (const auto& [id, est] : estimates) freqs.push_back(est);
  std::nth_element(freqs.begin(), freqs.begin() + static_cast<std::ptrdiff_t>(freqs.size() / 2),
                   freqs.end());
  const std::uint64_t median = freqs[freqs.size() / 2];
  const auto cap = static_cast<std::uint64_t>(
      std::max(1.0, config_.cap_factor * static_cast<double>(std::max<std::uint64_t>(median, 1))));

  std::vector<NodeId> kept;
  kept.reserve(stream.size());
  std::unordered_map<std::uint32_t, std::uint64_t> admitted;
  admitted.reserve(estimates.size());
  for (NodeId id : stream) {
    std::uint64_t& count = admitted[id.value];
    if (count < cap) {
      ++count;
      kept.push_back(id);
    } else {
      ++clipped_;
    }
  }
  return kept;
}

void StreamUnbiaser::next_round() {
  if (config_.decay_each_round) sketch_.decay();
}

}  // namespace raptee::brahms
