// Authenticator abstraction used by every node for the challenge–response
// that precedes pull requests (paper §IV-A).
//
// KeyedAuthenticator implements the three behaviourally-equivalent
// transports of design decision D5 (DESIGN.md):
//   kFull        — the paper's exact 3-message protocol (AES-256-CTR +
//                  SHA-256 proofs); used by tests and examples.
//   kFingerprint — a single keyed MAC per direction proving knowledge of
//                  the same key; same trust decisions, ~4x cheaper. Default
//                  for simulation sweeps.
//   kOracle      — proof carries the key fingerprint in clear; trust is a
//                  fingerprint comparison. Zero crypto on the hot path, for
//                  paper-scale runs only: it is NOT replay-safe, which is
//                  acceptable solely because the simulated adversary cannot
//                  eavesdrop trusted↔trusted handshakes (threat model
//                  §III-B rules out a global eavesdropper).
//
// A gtest (test_auth_modes) asserts the three modes produce identical trust
// decisions over identical populations.
#pragma once

#include <memory>

#include "crypto/key.hpp"
#include "crypto/mutual_auth.hpp"

namespace raptee::brahms {

enum class AuthMode : std::uint8_t { kFull, kFingerprint, kOracle };

class IAuthenticator {
 public:
  virtual ~IAuthenticator() = default;

  /// Initiator: auth message 1.
  [[nodiscard]] virtual crypto::AuthChallenge make_challenge() = 0;
  /// Responder: auth message 2.
  [[nodiscard]] virtual crypto::AuthResponse make_response(
      const crypto::AuthChallenge& challenge) = 0;
  /// Initiator: verifies message 2 against the challenge it sent, fills the
  /// confirm (message 3), and returns whether the responder proved knowledge
  /// of this node's key.
  [[nodiscard]] virtual bool verify_response(const crypto::AuthChallenge& challenge,
                                             const crypto::AuthResponse& response,
                                             crypto::AuthConfirm* confirm_out) = 0;
  /// Responder: verifies message 3 against the (challenge, response) pair.
  [[nodiscard]] virtual bool verify_confirm(const crypto::AuthChallenge& challenge,
                                            const crypto::AuthResponse& response,
                                            const crypto::AuthConfirm& confirm) = 0;
};

/// Authenticator bound to a symmetric key (per-node random key for untrusted
/// nodes; the attested group key for trusted nodes — in that case the key
/// lives inside the enclave and core::EnclaveAuthenticator is used instead).
class KeyedAuthenticator final : public IAuthenticator {
 public:
  KeyedAuthenticator(AuthMode mode, crypto::SymmetricKey key, crypto::Drbg drbg);

  [[nodiscard]] crypto::AuthChallenge make_challenge() override;
  [[nodiscard]] crypto::AuthResponse make_response(
      const crypto::AuthChallenge& challenge) override;
  [[nodiscard]] bool verify_response(const crypto::AuthChallenge& challenge,
                                     const crypto::AuthResponse& response,
                                     crypto::AuthConfirm* confirm_out) override;
  [[nodiscard]] bool verify_confirm(const crypto::AuthChallenge& challenge,
                                    const crypto::AuthResponse& response,
                                    const crypto::AuthConfirm& confirm) override;

  [[nodiscard]] AuthMode mode() const { return mode_; }

 private:
  AuthMode mode_;
  crypto::SymmetricKey key_;
  std::uint64_t fingerprint_;
  crypto::Drbg drbg_;
};

/// Helpers shared with the enclave-backed authenticator (core/):
namespace auth_detail {
/// Fingerprint-mode proof: HMAC(key, domain || a || b) truncated to 32 bytes.
[[nodiscard]] crypto::AuthToken mac_proof(const crypto::SymmetricKey& key,
                                          const char* domain, const crypto::AuthNonce& a,
                                          const crypto::AuthNonce& b);
/// Oracle-mode proof: the key fingerprint in the first 8 bytes.
[[nodiscard]] crypto::AuthToken oracle_proof(std::uint64_t fingerprint);
[[nodiscard]] std::uint64_t oracle_extract(const crypto::AuthToken& token);
[[nodiscard]] bool tokens_equal(const crypto::AuthToken& a, const crypto::AuthToken& b);
}  // namespace auth_detail

}  // namespace raptee::brahms
