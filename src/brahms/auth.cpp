#include "brahms/auth.hpp"

#include <cstring>

#include "crypto/hmac.hpp"

namespace raptee::brahms {

namespace auth_detail {

crypto::AuthToken mac_proof(const crypto::SymmetricKey& key, const char* domain,
                            const crypto::AuthNonce& a, const crypto::AuthNonce& b) {
  crypto::HmacSha256 mac(key.bytes().data(), key.bytes().size());
  mac.update(domain);
  mac.update(a.data(), a.size());
  mac.update(b.data(), b.size());
  const crypto::Digest256 d = mac.finish();
  crypto::AuthToken token{};
  std::memcpy(token.data(), d.data(), token.size());
  return token;
}

crypto::AuthToken oracle_proof(std::uint64_t fingerprint) {
  crypto::AuthToken token{};
  for (int i = 0; i < 8; ++i) token[i] = static_cast<std::uint8_t>(fingerprint >> (8 * i));
  return token;
}

std::uint64_t oracle_extract(const crypto::AuthToken& token) {
  std::uint64_t fp = 0;
  for (int i = 0; i < 8; ++i) fp |= static_cast<std::uint64_t>(token[i]) << (8 * i);
  return fp;
}

bool tokens_equal(const crypto::AuthToken& a, const crypto::AuthToken& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace auth_detail

using auth_detail::mac_proof;
using auth_detail::oracle_proof;
using auth_detail::oracle_extract;
using auth_detail::tokens_equal;

KeyedAuthenticator::KeyedAuthenticator(AuthMode mode, crypto::SymmetricKey key,
                                       crypto::Drbg drbg)
    : mode_(mode), key_(key), fingerprint_(key.fingerprint()), drbg_(std::move(drbg)) {}

crypto::AuthChallenge KeyedAuthenticator::make_challenge() {
  crypto::AuthChallenge challenge;
  drbg_.fill(challenge.r_a.data(), challenge.r_a.size());
  return challenge;
}

crypto::AuthResponse KeyedAuthenticator::make_response(
    const crypto::AuthChallenge& challenge) {
  crypto::AuthResponse response;
  drbg_.fill(response.r_b.data(), response.r_b.size());
  switch (mode_) {
    case AuthMode::kFull:
      response.proof_b = crypto::make_proof(key_, challenge.r_a, response.r_b);
      break;
    case AuthMode::kFingerprint:
      response.proof_b = mac_proof(key_, "resp", challenge.r_a, response.r_b);
      break;
    case AuthMode::kOracle:
      response.proof_b = oracle_proof(fingerprint_);
      break;
  }
  return response;
}

bool KeyedAuthenticator::verify_response(const crypto::AuthChallenge& challenge,
                                         const crypto::AuthResponse& response,
                                         crypto::AuthConfirm* confirm_out) {
  bool trusted = false;
  crypto::AuthConfirm confirm;
  switch (mode_) {
    case AuthMode::kFull:
      trusted = crypto::check_proof(key_, challenge.r_a, response.r_b, response.proof_b);
      confirm.proof_a = crypto::make_proof(key_, response.r_b, challenge.r_a);
      break;
    case AuthMode::kFingerprint:
      trusted = tokens_equal(response.proof_b,
                             mac_proof(key_, "resp", challenge.r_a, response.r_b));
      confirm.proof_a = mac_proof(key_, "init", response.r_b, challenge.r_a);
      break;
    case AuthMode::kOracle:
      trusted = oracle_extract(response.proof_b) == fingerprint_;
      confirm.proof_a = oracle_proof(fingerprint_);
      break;
  }
  if (confirm_out != nullptr) *confirm_out = confirm;
  return trusted;
}

bool KeyedAuthenticator::verify_confirm(const crypto::AuthChallenge& challenge,
                                        const crypto::AuthResponse& response,
                                        const crypto::AuthConfirm& confirm) {
  switch (mode_) {
    case AuthMode::kFull:
      return crypto::check_proof(key_, response.r_b, challenge.r_a, confirm.proof_a);
    case AuthMode::kFingerprint:
      return tokens_equal(confirm.proof_a,
                          mac_proof(key_, "init", response.r_b, challenge.r_a));
    case AuthMode::kOracle:
      return oracle_extract(confirm.proof_a) == fingerprint_;
  }
  return false;
}

}  // namespace raptee::brahms
