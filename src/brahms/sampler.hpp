// Brahms' local sampling component: l2 independent samplers, each holding
// the stream element minimizing a per-sampler min-wise independent hash
// (Broder et al.). Over any stream that contains each alive ID infinitely
// often, each sampler converges to an unbiased uniform sample, immune to
// adversarial over-representation in the stream.
//
// Sample *validation* (churn defence): Brahms periodically probes the
// currently held sample; if it stopped responding the sampler re-draws its
// hash function and restarts, so departed nodes eventually wash out of S.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "crypto/minwise.hpp"

namespace raptee::brahms {

class Sampler {
 public:
  explicit Sampler(std::uint64_t hash_seed) : hash_(hash_seed) {}

  /// Feeds one stream element.
  void next(NodeId id) {
    const std::uint64_t h = hash_(id);
    if (!current_.valid() || h < current_hash_) {
      current_ = id;
      current_hash_ = h;
    }
  }

  /// Currently held sample (kNoNode until the first element arrives).
  [[nodiscard]] NodeId sample() const { return current_; }
  [[nodiscard]] bool holds_sample() const { return current_.valid(); }

  /// Re-initializes with a fresh hash function, forgetting the held sample.
  void reinit(std::uint64_t new_hash_seed) {
    hash_ = crypto::MinWiseHash(new_hash_seed);
    current_ = kNoNode;
    current_hash_ = ~0ull;
  }

 private:
  crypto::MinWiseHash hash_;
  NodeId current_ = kNoNode;
  std::uint64_t current_hash_ = ~0ull;
};

class SamplerArray {
 public:
  /// Creates `l2` samplers with independent hash seeds drawn from `rng`.
  SamplerArray(std::size_t l2, Rng& rng);

  void feed(NodeId id) {
    for (auto& s : samplers_) s.next(id);
  }
  void feed_all(const std::vector<NodeId>& ids) {
    for (NodeId id : ids) feed(id);
  }

  [[nodiscard]] std::size_t size() const { return samplers_.size(); }

  /// Distinct IDs currently held across all samplers.
  [[nodiscard]] std::vector<NodeId> sample_list() const;

  /// `k` IDs drawn uniformly (without replacement) from the distinct held
  /// samples — the γ·l1 "history sample" of the view renewal.
  [[nodiscard]] std::vector<NodeId> history_sample(std::size_t k, Rng& rng) const;

  /// Probes every held sample with `alive`; re-initializes samplers whose
  /// sample fails the probe. Returns the number re-initialized.
  std::size_t validate(const std::function<bool(NodeId)>& alive, Rng& rng);

  [[nodiscard]] const Sampler& at(std::size_t i) const { return samplers_[i]; }

 private:
  std::vector<Sampler> samplers_;
};

}  // namespace raptee::brahms
