// Brahms protocol parameters (Bortnikov et al., Computer Networks 2009).
#pragma once

#include <cmath>
#include <cstddef>

#include "common/assert.hpp"

namespace raptee::brahms {

/// α, β, γ split the l1-entry dynamic view between pushed IDs, pulled IDs
/// and the history sample; the paper (and RAPTEE) use α=β=0.4, γ=0.2.
struct Params {
  std::size_t l1 = 48;   ///< dynamic view size (paper's large-scale runs: 200)
  std::size_t l2 = 48;   ///< number of samplers / sample-list size
  double alpha = 0.4;    ///< push share of the view renewal
  double beta = 0.4;     ///< pull share
  double gamma = 0.2;    ///< history-sample share

  /// Pushes sent per round and maximum non-flood pushes accepted: α·l1.
  [[nodiscard]] std::size_t push_slice() const {
    return static_cast<std::size_t>(std::lround(alpha * static_cast<double>(l1)));
  }
  /// Pull requests sent per round and pulled share of the renewal: β·l1.
  [[nodiscard]] std::size_t pull_slice() const {
    return static_cast<std::size_t>(std::lround(beta * static_cast<double>(l1)));
  }
  /// History-sample share of the renewal: γ·l1 (remainder, so the three
  /// slices always sum to exactly l1).
  [[nodiscard]] std::size_t history_slice() const {
    const std::size_t ps = push_slice(), ls = pull_slice();
    RAPTEE_ASSERT_MSG(ps + ls <= l1, "alpha+beta must not exceed 1");
    return l1 - ps - ls;
  }

  void validate() const {
    RAPTEE_REQUIRE(l1 >= 4, "l1 too small: " << l1);
    RAPTEE_REQUIRE(l2 >= 1, "l2 too small: " << l2);
    RAPTEE_REQUIRE(alpha >= 0 && beta >= 0 && gamma >= 0, "negative share");
    RAPTEE_REQUIRE(std::abs(alpha + beta + gamma - 1.0) < 1e-9,
                   "alpha+beta+gamma must equal 1, got " << alpha + beta + gamma);
  }
};

}  // namespace raptee::brahms
