// BrahmsNode — full Brahms protocol participant (gossip component, sampling
// component, and all four defence mechanisms), implementing sim::INode.
//
// Per round, a node:
//   * sends α·l1 push messages and β·l1 pull requests to targets drawn
//     uniformly (with replacement) from its dynamic view V;
//   * answers every pull with its full view (paper §III-A);
//   * precedes each pull by the mutual-authentication challenge–response
//     (RAPTEE's modification — honest untrusted nodes run it too, with
//     their own random key, so trusted nodes stay camouflaged);
//   * at end of round feeds received IDs to the l2 samplers and, unless
//     blocked, renews V as rand(α·l1 of pushed) ∪ rand(β·l1 of pulled) ∪
//     rand(γ·l1 of sample list).
//
// Defence mechanisms:
//   (i)   limited pushes — nodes send exactly α·l1 pushes; the adversary's
//         budget is rate-limited system-wide (enforced by the adversary
//         model, mirroring the paper's Merkle-puzzle assumption);
//   (ii)  attack detection & blocking — if more than α·l1 pushes arrive in
//         a round, the view update is skipped entirely;
//   (iii) balanced push/pull contribution — the α/β split above;
//   (iv)  history sampling — the γ·l1 slice re-injects unbiased samples,
//         providing self-healing after targeted attacks.
//
// Extension hooks (protected virtuals) let core::RapteeNode add trusted
// exchanges and Byzantine eviction without duplicating protocol code.
#pragma once

#include <memory>
#include <optional>

#include "brahms/auth.hpp"
#include "brahms/params.hpp"
#include "brahms/sampler.hpp"
#include "common/rng.hpp"
#include "gossip/view.hpp"
#include "sim/node.hpp"

namespace raptee::brahms {

struct BrahmsConfig {
  Params params;
  /// Probe held samples for liveness every this many rounds (0 = never).
  /// A no-op without churn; essential with it.
  Round sampler_validation_period = 10;
};

/// Per-round observable state, for metrics, tests and the SGX ledger.
struct RoundTelemetry {
  std::size_t pushes_received = 0;
  std::size_t pulls_answered = 0;
  std::size_t pulls_completed = 0;     ///< outgoing pulls that returned a reply
  std::size_t trusted_exchanges = 0;   ///< completed pulls with mutual trust
  std::size_t pulled_ids_total = 0;    ///< IDs received via pulls (pre-filter)
  std::size_t pulled_ids_kept = 0;     ///< after the eviction hook
  double eviction_rate = 0.0;          ///< rate applied this round (trusted nodes)
  bool update_blocked = false;         ///< defence (ii) triggered
};

class BrahmsNode : public sim::INode {
 public:
  BrahmsNode(NodeId self, BrahmsConfig config, std::unique_ptr<IAuthenticator> auth,
             Rng rng, std::function<bool(NodeId)> alive_probe = {});

  // --- sim::INode ---
  [[nodiscard]] NodeId id() const override { return self_; }
  void bootstrap(const std::vector<NodeId>& initial_peers) override;
  void begin_round(Round r) override;
  [[nodiscard]] std::vector<NodeId> push_targets() override;
  void push_targets(std::vector<NodeId>& out) override;
  [[nodiscard]] wire::PushMessage make_push() override;
  void on_push(const wire::PushMessage& push) override;
  [[nodiscard]] std::vector<NodeId> pull_targets() override;
  void pull_targets(std::vector<NodeId>& out) override;
  [[nodiscard]] wire::PullRequest open_pull(NodeId target) override;
  [[nodiscard]] wire::PullReply answer_pull(const wire::PullRequest& request) override;
  [[nodiscard]] wire::AuthConfirm process_pull_reply(const wire::PullReply& reply) override;
  [[nodiscard]] std::optional<wire::SwapReply> process_confirm(
      const wire::AuthConfirm& confirm) override;
  void process_swap_reply(const wire::SwapReply& reply) override;
  void on_pull_timeout(NodeId target) override;
  void end_round(Round r) override;
  [[nodiscard]] std::vector<NodeId> current_view() const override { return view_.ids(); }
  /// The dynamic view has fixed capacity l1 — a constant slab-slot bound.
  [[nodiscard]] std::size_t view_capacity() const override { return view_.capacity(); }
  std::size_t copy_view(NodeId* out, std::size_t cap) const override {
    return view_.copy_ids(out, cap);
  }

  // --- public API (peer-sampling service surface) ---
  /// Uniform samples accumulated by the sampling component.
  [[nodiscard]] std::vector<NodeId> sample_list() const { return samplers_.sample_list(); }
  [[nodiscard]] const gossip::PartialView& view() const { return view_; }
  [[nodiscard]] const Params& params() const { return config_.params; }
  [[nodiscard]] const RoundTelemetry& telemetry() const { return telemetry_; }

 protected:
  /// One completed outgoing pull: the responder, whether mutual trust was
  /// established, and the IDs it returned.
  struct PullRecord {
    NodeId peer;
    bool trusted = false;
    std::vector<NodeId> ids;
  };

  // --- extension hooks for RAPTEE ---
  /// Initiator-side, after authenticating `peer` as trusted. Return a swap
  /// offer (half view + self link) to open a trusted exchange; default none.
  [[nodiscard]] virtual std::optional<std::vector<NodeId>> make_swap_offer(NodeId peer);
  /// Responder-side, after verifying the initiator as trusted and receiving
  /// its swap offer. Return the half view to send back; default ignore.
  [[nodiscard]] virtual std::optional<std::vector<NodeId>> accept_swap_offer(
      NodeId peer, const std::vector<NodeId>& offer);
  /// Initiator-side, closing a trusted exchange with the responder's half.
  virtual void integrate_swap_reply(NodeId peer, const std::vector<NodeId>& half);

  /// What this round's pulled IDs contribute downstream. RAPTEE's eviction
  /// overrides the default (which keeps everything, plain Brahms).
  struct PulledContribution {
    /// Stream fed to the samplers (post-eviction).
    std::vector<NodeId> sampler_ids;
    /// Renewal stream from trusted-authenticated sources (pull answers of
    /// trusted peers + swap halves); never capped.
    std::vector<NodeId> renewal_trusted;
    /// Renewal stream from untrusted sources.
    std::vector<NodeId> renewal_untrusted;
    /// Untrusted IDs may fill at most this fraction of the β·l1 slice
    /// (1 - eviction rate); the vacated slots fall through to the history
    /// sample and the D3 retention rule.
    double untrusted_slice_cap = 1.0;
  };
  [[nodiscard]] virtual PulledContribution process_pulled(
      const std::vector<PullRecord>& records);
  /// Called when the view was renewed (not blocked) — RAPTEE uses it to
  /// refresh trusted bookkeeping.
  virtual void after_view_update() {}

  /// Accessors for subclasses.
  [[nodiscard]] gossip::PartialView& mutable_view() { return view_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] IAuthenticator& authenticator() { return *auth_; }
  [[nodiscard]] const std::vector<PullRecord>& pull_records() const { return pulled_; }
  [[nodiscard]] RoundTelemetry& mutable_telemetry() { return telemetry_; }

 private:
  void renew_view(const PulledContribution& pulled);

  NodeId self_;
  BrahmsConfig config_;
  std::unique_ptr<IAuthenticator> auth_;
  Rng rng_;
  std::function<bool(NodeId)> alive_probe_;

  gossip::PartialView view_;
  SamplerArray samplers_;

  // Per-round buffers.
  std::vector<NodeId> pushed_;          ///< advertised IDs from received pushes
  std::size_t raw_push_count_ = 0;      ///< including duplicates (flood detection)
  std::vector<PullRecord> pulled_;

  // Single-slot exchange state (the engine completes each exchange's legs
  // before starting the next; asserted in debug).
  struct InitiatorSlot {
    bool active = false;
    NodeId target;
    crypto::AuthChallenge challenge;
  } initiator_slot_;
  struct ResponderSlot {
    bool active = false;
    NodeId peer;
    crypto::AuthChallenge challenge;
    crypto::AuthResponse response;
  } responder_slot_;

  RoundTelemetry telemetry_;
};

}  // namespace raptee::brahms
