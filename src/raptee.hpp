// Umbrella header: the RAPTEE public API.
//
//   #include "raptee.hpp"
//
// pulls in everything a downstream application needs to build a RAPTEE /
// Brahms peer-sampling deployment or simulation. See README.md for a
// quickstart and examples/ for runnable programs.
#pragma once

#include "brahms/auth.hpp"        // IWYU pragma: export
#include "brahms/node.hpp"        // IWYU pragma: export
#include "brahms/params.hpp"      // IWYU pragma: export
#include "brahms/sampler.hpp"     // IWYU pragma: export
#include "common/rng.hpp"         // IWYU pragma: export
#include "common/stats.hpp"       // IWYU pragma: export
#include "common/types.hpp"       // IWYU pragma: export
#include "core/eviction.hpp"      // IWYU pragma: export
#include "core/node_factory.hpp"  // IWYU pragma: export
#include "core/raptee_node.hpp"   // IWYU pragma: export
#include "exec/exec.hpp"          // IWYU pragma: export
#include "gossip/framework.hpp"   // IWYU pragma: export
#include "gossip/view.hpp"        // IWYU pragma: export
#include "scenario/scenario.hpp"  // IWYU pragma: export
#include "sgx/attestation.hpp"    // IWYU pragma: export
#include "sgx/enclave.hpp"        // IWYU pragma: export
#include "sim/churn.hpp"          // IWYU pragma: export
#include "sim/engine.hpp"         // IWYU pragma: export
