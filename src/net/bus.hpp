// Async socket bus: persistent duplex TCP connections carrying the
// existing wire format over loopback.
//
// One Bus is one transport endpoint (a RAPTEE node or a service daemon).
// It owns an EventLoop on a dedicated thread and multiplexes any number of
// connections over it:
//
//   * framing      — every frame is a 4-byte length prefix + payload
//                    (net/frame.hpp); the payload bytes are exactly what
//                    the caller handed send(), sealed when applicable.
//   * handshake    — the first frame each way is a HELLO (magic, version,
//                    role, NodeId, a per-connection nonce); everything
//                    after it is payload.
//   * dispatch     — after HELLO, a node-node connection is bound to a
//                    wire::LinkTable session established from the link
//                    token (both HELLO nonces, initiator-first): outgoing
//                    payloads are sealed with LinkCipher (seq || ct || tag)
//                    and incoming frames opened before delivery. Because
//                    the token is a property of the surviving TCP stream,
//                    both endpoints' independent same-master tables derive
//                    byte-identical session keys even when a simultaneous
//                    dial creates and destroys competing connections in
//                    different orders on the two sides — and the sealed
//                    socket bytes are byte-identical to the simulator's
//                    wire path for the same master key and token.
//                    Client connections (role kClient — e.g. the service
//                    load generator) carry plaintext frames: an anonymous
//                    client shares no master key, and the peer-sampling
//                    service it queries is public-read by design.
//   * retriable dialing — connect() records the peer's address and dials
//                    with exponential backoff (backoff_initial, doubling to
//                    backoff_max) until connect_deadline; payloads sent
//                    before establishment queue and flush in order on
//                    success. A later send() to a torn-down peer re-dials
//                    automatically.
//   * dedup        — when both endpoints dial each other, the connection
//                    initiated by the LOWER NodeId survives on both sides
//                    (a deterministic, symmetric rule), so a pair never
//                    carries sealed traffic on two streams at once.
//   * idle teardown — idle_timeout > 0 closes connections with no traffic
//                    for that long; both endpoints invalidate the pair's
//                    link session (symmetric establishment counting), and
//                    the next send re-dials and rekeys.
//
// Threading: connect/send/reply/stats are safe from any thread; all
// callbacks run on the loop thread and must not block.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "wire/link_session.hpp"

namespace raptee::net {

enum class PeerRole : std::uint8_t {
  kNode = 0,    ///< a cluster endpoint; frames sealed via the link table
  kClient = 1,  ///< an anonymous service client; plaintext frames
};

/// HELLO handshake constants and codec, shared with out-of-process clients
/// (the load generator speaks the handshake without owning a Bus).
inline constexpr std::uint32_t kHelloMagic = 0x42545052;  // "RPTB" on the wire
inline constexpr std::uint8_t kHelloVersion = 1;
[[nodiscard]] std::vector<std::uint8_t> encode_hello(NodeId self, PeerRole role,
                                                     std::uint64_t nonce);

/// Message-source identity handed to callbacks. `conn` uniquely names the
/// connection — the reply key for clients, whose NodeIds are not unique.
struct Peer {
  NodeId id{0};
  std::uint64_t conn = 0;
  PeerRole role = PeerRole::kNode;
  /// Link-session token agreed in the handshake (0 for plaintext links).
  /// LinkTable::establish(self, id, link_token) on any same-master table
  /// reproduces the connection's session keys — the fidelity tests use it.
  std::uint64_t link_token = 0;
};

struct BusStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t accepted = 0;
  std::uint64_t dialed = 0;
  std::uint64_t dial_retries = 0;
  std::uint64_t teardowns = 0;
  std::uint64_t open_failures = 0;  ///< sealed frames that failed to open
  /// HELLOs rejected before establishment (bad magic/version/role,
  /// malformed bytes, or an outbound dial answered by the wrong NodeId).
  std::uint64_t handshake_failures = 0;
};

struct BusConfig {
  NodeId self{0};
  PeerRole role = PeerRole::kNode;
  /// Sealing table for node-node connections; nullptr = plaintext frames
  /// even between nodes (framing-only mode).
  wire::LinkTable* links = nullptr;
  std::chrono::milliseconds connect_deadline{3000};
  std::chrono::milliseconds backoff_initial{10};
  std::chrono::milliseconds backoff_max{250};
  /// 0 = connections never idle out.
  std::chrono::milliseconds idle_timeout{0};
  std::size_t max_frame = kMaxFrame;
  /// Base for per-connection HELLO nonces; 0 = seeded from the system
  /// entropy source. Tests pin it for reproducible link tokens.
  std::uint64_t nonce_seed = 0;

  // Callbacks (all on the loop thread; any may be empty).
  std::function<void(const Peer&, std::vector<std::uint8_t> payload)> on_message;
  std::function<void(const Peer&)> on_peer_up;
  std::function<void(const Peer&, const char* reason)> on_peer_down;
  /// Test instrumentation: every received payload frame of a sealed
  /// connection, exactly as it crossed the socket (before opening). Used by
  /// the wire-fidelity tests to compare transported bytes against the
  /// simulator's sealed legs.
  std::function<void(NodeId from, const std::vector<std::uint8_t>& sealed)> frame_tap;
};

class Bus {
 public:
  explicit Bus(BusConfig config);
  ~Bus();
  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral); returns the
  /// bound port. Call before start().
  std::uint16_t listen(std::uint16_t port);

  /// Starts the loop thread. Idempotent.
  void start();

  /// Records `peer`'s address and dials it now (async, retried with
  /// backoff until connect_deadline). Safe from any thread.
  void connect(NodeId peer, std::uint16_t port);
  /// Records the address without dialing; the first send() dials.
  void add_route(NodeId peer, std::uint16_t port);

  /// Queues `payload` to `peer` (node-role connections only): delivered in
  /// send order once the connection is up, dialing first if needed. Returns
  /// false if the bus was never given an address for `peer` (the payload is
  /// dropped); queued payloads of a dial that exhausts its deadline are
  /// dropped with on_peer_down.
  bool send(NodeId peer, std::vector<std::uint8_t> payload);

  /// Queues `payload` on a specific connection (the service reply path).
  /// Dropped silently if the connection is gone.
  void reply(std::uint64_t conn, std::vector<std::uint8_t> payload);

  /// Stops accepting new connections, lets every queued outgoing byte
  /// flush (up to `deadline`), tears the connections down and stops the
  /// loop. Blocks. Used by rapteed's SIGTERM drain.
  void drain_and_stop(std::chrono::milliseconds deadline);

  /// Immediate stop: tears everything down without flushing. Blocks.
  void stop();

  [[nodiscard]] BusStats stats() const;
  [[nodiscard]] std::size_t established_peers() const {
    return established_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    std::uint64_t id = 0;
    Fd fd;
    bool inbound = false;
    bool connecting = false;      // non-blocking connect still pending
    bool hello_received = false;
    bool established = false;
    bool closing = false;         // drain: tear down once wbuf flushes
    NodeId peer{0};
    PeerRole peer_role = PeerRole::kNode;
    bool plaintext = true;
    std::uint64_t local_nonce = 0;  // ours, sent in HELLO
    std::uint64_t link_token = 0;   // mixed from both nonces at establishment
    wire::LinkSession* session = nullptr;
    FrameSplitter splitter;
    std::vector<std::uint8_t> payload;   // frame-reassembly scratch
    std::vector<std::uint8_t> opened;    // AEAD-open scratch
    std::vector<std::uint8_t> wbuf;      // pending outgoing stream bytes
    std::size_t wpos = 0;
    std::chrono::steady_clock::time_point last_activity;
  };

  struct PeerState {
    std::uint64_t conn = 0;     // established connection, 0 = none
    std::uint64_t dialing = 0;  // in-flight outbound attempt, 0 = none
    std::uint16_t port = 0;     // known address, 0 = unknown
    std::chrono::milliseconds backoff{0};
    std::chrono::steady_clock::time_point dial_deadline;
    std::deque<std::vector<std::uint8_t>> pending;  // plaintext payloads
  };

  // --- loop-thread only ---
  void register_listener();
  void accept_ready();
  Connection& adopt_connection(Fd fd, bool inbound);
  void send_hello(Connection& conn);
  void dial(NodeId peer);
  void retry_dial(NodeId peer, const char* why);
  void on_dial_writable(std::uint64_t conn_id, NodeId peer);
  void conn_readable(std::uint64_t conn_id);
  void conn_writable(std::uint64_t conn_id);
  void handle_frame(Connection& conn);
  void handle_hello(Connection& conn);
  void enqueue_payload(Connection& conn, const std::uint8_t* data, std::size_t len);
  void flush_writes(Connection& conn);
  void update_interest(Connection& conn);
  void teardown(std::uint64_t conn_id, const char* reason);
  void record_handshake_failure();
  void sweep_idle();
  void finish_drain(std::chrono::steady_clock::time_point deadline);
  [[nodiscard]] Peer peer_of(const Connection& conn) const {
    return Peer{conn.peer, conn.id, conn.peer_role, conn.link_token};
  }

  BusConfig config_;
  EventLoop loop_;
  std::thread thread_;
  bool started_ = false;
  std::mutex start_mu_;

  Fd listen_fd_;
  std::uint16_t listen_port_ = 0;
  bool draining_ = false;

  std::uint64_t next_conn_ = 1;
  std::uint64_t nonce_base_ = 0;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::unordered_map<std::uint32_t, PeerState> peers_;  // key: NodeId.value
  std::vector<std::uint8_t> seal_scratch_;

  // --- any thread (guarded by stats_mu_) ---
  std::atomic<std::size_t> established_{0};
  mutable std::mutex stats_mu_;
  BusStats stats_;
  std::unordered_set<std::uint32_t> routes_;  // peers with a known address

  // Process-wide "bus.*" metrics mirroring stats_ (additive across Bus
  // instances — see obs/registry.hpp). Pointers into Registry::global(),
  // resolved once in the constructor; valid for the process lifetime.
  struct Metrics {
    obs::Counter* frames_sent = nullptr;
    obs::Counter* frames_received = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* bytes_received = nullptr;
    obs::Counter* accepted = nullptr;
    obs::Counter* dialed = nullptr;
    obs::Counter* dial_retries = nullptr;
    obs::Counter* teardowns = nullptr;
    obs::Counter* open_failures = nullptr;
    obs::Counter* handshake_failures = nullptr;
    obs::Histogram* flush_us = nullptr;
  };
  Metrics metrics_;
};

}  // namespace raptee::net
