#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace raptee::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw NetError(std::string(what) + ": " + std::strerror(errno));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

std::pair<Fd, std::uint16_t> listen_loopback(std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("bind(127.0.0.1)");
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  set_nonblocking(fd.get());
  return {std::move(fd), ntohs(addr.sin_port)};
}

Fd connect_loopback(std::uint16_t port, bool* in_progress) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  set_nonblocking(fd.get());
  set_nodelay(fd.get());
  const sockaddr_in addr = loopback_addr(port);
  const int rc =
      ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  *in_progress = rc != 0 && errno == EINPROGRESS;
  if (rc != 0 && !*in_progress) {
    // Refused/unreachable right away (loopback commonly fails synchronously
    // with ECONNREFUSED): hand back the errno through connect_result by
    // closing here and signalling with an invalid fd.
    return Fd();
  }
  return fd;
}

int connect_result(int fd) {
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return errno;
  return err;
}

std::optional<Fd> accept_connection(int listen_fd) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return std::nullopt;
    // ECONNABORTED and friends: the would-be connection is already gone;
    // treat like "nothing to accept".
    return std::nullopt;
  }
  Fd owned(fd);
  set_nonblocking(fd);
  set_nodelay(fd);
  return owned;
}

long read_some(int fd, std::uint8_t* buf, std::size_t cap) {
  while (true) {
    const ssize_t n = ::read(fd, buf, cap);
    if (n > 0) return n;
    if (n == 0) return 0;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return -2;
  }
}

long write_some(int fd, const std::uint8_t* buf, std::size_t len) {
  while (true) {
    const ssize_t n = ::write(fd, buf, len);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return -2;
  }
}

}  // namespace raptee::net
