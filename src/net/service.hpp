// Peer-sampling-as-a-service: the request/reply codec and the daemon.
//
// The paper's peer-sampling service is an API other protocols build on —
// "give me k uniformly sampled live peers". ServiceDaemon exposes exactly
// that over the socket bus: it embeds a RAPTEE population (the simulation
// engine stepping on a background thread), and answers SampleRequest frames
// from anonymous clients with samples drawn from the embedded service
// node's sampler output — the l2 sample list, the component the protocol
// guarantees converges to uniform-over-live-nodes.
//
// Framing: service frames ride the same 4-byte length-prefixed envelope as
// node links, in the clear (role kClient — an anonymous client shares no
// master key, and the sample list is public-read by design; see bus.hpp).
//
//   SampleRequest := u8 kind=1 | u64 tag | u16 count
//   SampleReply   := u8 kind=2 | u64 tag | u64 round | NodeId list
//
// `tag` is echoed verbatim so a pipelining client can match replies.
// Malformed requests are dropped (never answered), mirroring the protocol
// codecs' posture toward Byzantine bytes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/bus.hpp"
#include "obs/registry.hpp"
#include "sim/engine.hpp"

namespace raptee::net {

struct SampleRequest {
  std::uint64_t tag = 0;
  std::uint16_t count = 1;
};

struct SampleReply {
  std::uint64_t tag = 0;
  std::uint64_t round = 0;
  std::vector<NodeId> samples;
};

[[nodiscard]] std::vector<std::uint8_t> encode_sample_request(const SampleRequest& req);
[[nodiscard]] std::vector<std::uint8_t> encode_sample_reply(const SampleReply& reply);
/// nullopt on malformed bytes (the daemon drops, a client treats as error).
[[nodiscard]] std::optional<SampleRequest> decode_sample_request(
    const std::uint8_t* data, std::size_t len);
[[nodiscard]] std::optional<SampleReply> decode_sample_reply(
    const std::uint8_t* data, std::size_t len);

/// Hard cap on samples per request (a length bomb must not build a
/// megabyte reply).
inline constexpr std::uint16_t kMaxSamplesPerRequest = 256;

struct DaemonConfig {
  std::uint16_t port = 0;        ///< 0 = ephemeral
  std::size_t population = 32;   ///< embedded RAPTEE population size
  std::size_t view_size = 16;    ///< Brahms l1 = l2 for the population
  std::uint64_t seed = 1;
  Round warmup_rounds = 20;      ///< rounds stepped before serving
  std::chrono::milliseconds step_interval{25};  ///< background round cadence
  std::chrono::milliseconds drain{500};         ///< stop(): flush budget
};

/// The rapteed core, embeddable in tests: start() brings the service up on
/// a loopback port, stop() drains and joins. Thread layout: the bus loop
/// thread serves requests from a mutex-guarded sampler snapshot; a step
/// thread advances the embedded engine and refreshes the snapshot — the
/// engine itself is single-threaded and never touched by the bus thread.
class ServiceDaemon {
 public:
  explicit ServiceDaemon(DaemonConfig config);
  ~ServiceDaemon();

  /// Builds and warms up the population, binds the port, starts serving.
  /// Returns the bound port.
  std::uint16_t start();

  /// Graceful drain: stop accepting, flush replies in flight (bounded by
  /// config.drain), stop the step thread. Idempotent.
  void stop();

  [[nodiscard]] std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rounds_stepped() const {
    return rounds_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] BusStats bus_stats() const { return bus_->stats(); }

 private:
  void step_loop();
  void refresh_snapshot();
  void on_frame(const Peer& peer, std::vector<std::uint8_t> payload);

  DaemonConfig config_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<Bus> bus_;
  std::thread stepper_;
  std::atomic<bool> running_{false};
  bool started_ = false;

  mutable std::mutex snapshot_mu_;
  std::vector<NodeId> snapshot_;   ///< service node's current sample list
  std::uint64_t snapshot_round_ = 0;
  Rng sample_rng_;

  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> rounds_{0};

  // Process-wide "service.*" metrics (Registry::global()): request
  // counters plus the sample-serving latency histogram (decode ->
  // reply-enqueued, microseconds, on the bus loop thread).
  obs::Counter* served_metric_ = nullptr;
  obs::Counter* rejected_metric_ = nullptr;
  obs::Counter* rounds_metric_ = nullptr;
  obs::Histogram* sample_us_ = nullptr;
};

}  // namespace raptee::net
