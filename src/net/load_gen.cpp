#include "net/load_gen.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <optional>
#include <thread>

#include "common/stats.hpp"
#include "net/bus.hpp"
#include "net/frame.hpp"
#include "net/service.hpp"
#include "net/socket.hpp"

namespace raptee::net {

namespace {

using Clock = std::chrono::steady_clock;

/// poll(2) for one event with a deadline; false on timeout.
bool wait_fd(int fd, short events, Clock::time_point deadline) {
  while (true) {
    const auto now = Clock::now();
    if (now >= deadline) return false;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pollfd pfd{fd, events, 0};
    const int n = ::poll(&pfd, 1, static_cast<int>(std::max<std::int64_t>(
                                      1, left.count())));
    if (n > 0) return true;
    if (n < 0 && errno != EINTR) return false;
  }
}

/// Writes the whole buffer, polling on EAGAIN; false on error/timeout.
bool write_all(int fd, const std::uint8_t* data, std::size_t len,
               Clock::time_point deadline) {
  std::size_t off = 0;
  while (off < len) {
    const long n = write_some(fd, data + off, len - off);
    if (n == -2) return false;
    if (n == -1) {
      if (!wait_fd(fd, POLLOUT, deadline)) return false;
      continue;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until one complete frame is split out; false on EOF/error/timeout.
bool read_frame(int fd, FrameSplitter& splitter, std::vector<std::uint8_t>& payload,
                Clock::time_point deadline) {
  while (true) {
    try {
      if (splitter.next(payload)) return true;
    } catch (const FrameError&) {
      return false;
    }
    if (!wait_fd(fd, POLLIN, deadline)) return false;
    std::uint8_t buf[8192];
    const long n = read_some(fd, buf, sizeof buf);
    if (n == 0 || n == -2) return false;
    if (n > 0) splitter.feed(buf, static_cast<std::size_t>(n));
  }
}

struct WorkerResult {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t samples = 0;
  bool ever_connected = false;
  std::vector<double> latencies_us;
};

struct Session {
  Fd fd;
  FrameSplitter splitter;
};

/// Connect + HELLO exchange; empty optional on failure.
std::optional<Session> open_session(const LoadConfig& config, std::uint32_t index,
                                    std::uint64_t nonce, Clock::time_point deadline) {
  bool in_progress = false;
  Fd fd;
  try {
    fd = connect_loopback(config.port, &in_progress);
  } catch (const NetError&) {
    return std::nullopt;
  }
  if (!fd.valid()) return std::nullopt;
  if (in_progress) {
    if (!wait_fd(fd.get(), POLLOUT, deadline)) return std::nullopt;
    if (connect_result(fd.get()) != 0) return std::nullopt;
  }
  Session s;
  s.fd = std::move(fd);
  std::vector<std::uint8_t> framed;
  const std::vector<std::uint8_t> hello =
      encode_hello(NodeId{index}, PeerRole::kClient, nonce);
  append_frame(framed, hello.data(), hello.size());
  if (!write_all(s.fd.get(), framed.data(), framed.size(), deadline)) {
    return std::nullopt;
  }
  // Consume the daemon's HELLO so the stream is positioned at payloads.
  std::vector<std::uint8_t> payload;
  if (!read_frame(s.fd.get(), s.splitter, payload, deadline)) return std::nullopt;
  return s;
}

WorkerResult run_worker(const LoadConfig& config, std::uint32_t index,
                        std::uint64_t nonce_base, Clock::time_point end) {
  WorkerResult result;
  std::optional<Session> session;
  std::uint64_t tag = static_cast<std::uint64_t>(index) << 32;
  std::uint64_t reconnects = 0;
  std::vector<std::uint8_t> framed;
  std::vector<std::uint8_t> payload;
  while (Clock::now() < end) {
    const auto deadline = std::min(end, Clock::now() + config.reply_timeout);
    if (!session) {
      session = open_session(config, index,
                             nonce_base + index + (reconnects++ << 16), deadline);
      if (!session) {
        ++result.errors;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      result.ever_connected = true;
    }
    SampleRequest req;
    req.tag = ++tag;
    req.count = config.samples_per_request;
    const std::vector<std::uint8_t> body = encode_sample_request(req);
    framed.clear();
    append_frame(framed, body.data(), body.size());
    const auto t0 = Clock::now();
    bool ok = write_all(session->fd.get(), framed.data(), framed.size(), deadline);
    std::optional<SampleReply> reply;
    while (ok) {
      if (!read_frame(session->fd.get(), session->splitter, payload, deadline)) {
        ok = false;
        break;
      }
      reply = decode_sample_reply(payload.data(), payload.size());
      if (!reply) {
        ok = false;  // garbage on a service stream: reconnect
        break;
      }
      if (reply->tag == req.tag) break;  // stale tags (pre-timeout) skipped
    }
    if (!ok) {
      ++result.errors;
      session.reset();
      continue;
    }
    const auto t1 = Clock::now();
    ++result.requests;
    result.samples += reply->samples.size();
    result.latencies_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  return result;
}

}  // namespace

LoadReport run_load(const LoadConfig& config) {
  const auto start = Clock::now();
  const auto end = start + config.duration;
  std::vector<WorkerResult> results(config.connections);
  std::vector<std::thread> workers;
  workers.reserve(config.connections);
  for (std::size_t i = 0; i < config.connections; ++i) {
    workers.emplace_back([&, i] {
      results[i] = run_worker(config, static_cast<std::uint32_t>(i),
                              config.nonce_seed, end);
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  LoadReport report;
  report.duration_ms = elapsed_ms;
  std::vector<double> latencies;
  bool connected = false;
  for (auto& r : results) {
    report.requests += r.requests;
    report.errors += r.errors;
    report.samples_received += r.samples;
    connected = connected || r.ever_connected;
    latencies.insert(latencies.end(), r.latencies_us.begin(), r.latencies_us.end());
  }
  if (!connected) {
    throw NetError("load generator: no connection to port " +
                   std::to_string(config.port));
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    report.p50_us = percentile_of_sorted(latencies, 50.0);
    report.p99_us = percentile_of_sorted(latencies, 99.0);
    report.max_us = latencies.back();
  }
  if (elapsed_ms > 0) {
    report.rps = static_cast<double>(report.requests) / (elapsed_ms / 1000.0);
  }
  return report;
}

}  // namespace raptee::net
