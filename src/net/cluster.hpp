// LoopbackCluster: N real RAPTEE nodes on localhost, each a full endpoint —
// its own BrahmsNode protocol instance, its own LinkTable (derived from the
// shared deployment master key), its own Bus on its own port — exchanging
// the genuine five-leg wire format (wire::Message codec bytes, sealed with
// LinkCipher) over real TCP connections.
//
// This is the integration vehicle the transport exists for: the simulator
// proves the protocol at scale, the cluster proves the same protocol
// objects converge when every leg crosses a socket. Round structure:
//
//   run_rounds(r) drives rounds from the caller thread. Per round, for
//   every node: begin_round; pushes fan out (fire-and-forget, exactly the
//   engine's phase 2); each pull target gets the five-leg exchange —
//   PullRequest is sent and the driver blocks (bounded) for the PullReply,
//   the AuthConfirm goes back, and the responder's legs (answer_pull,
//   process_confirm) plus the async SwapReply close run on the receiving
//   endpoint's bus thread; then end_round. A missing reply times out into
//   on_pull_timeout, the same degradation path the engine models as loss.
//
// Concurrency: each endpoint's BrahmsNode is guarded by a per-endpoint
// mutex — the driver thread (initiator legs) and the endpoint's bus loop
// thread (responder legs) both take it; leg handlers never block on other
// endpoints, so lock ordering is trivially acyclic (one lock at a time).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "brahms/node.hpp"
#include "common/types.hpp"
#include "core/node_factory.hpp"
#include "net/bus.hpp"
#include "wire/link_session.hpp"
#include "wire/message.hpp"

namespace raptee::net {

struct ClusterConfig {
  std::size_t nodes = 9;
  std::uint64_t seed = 1;
  /// Brahms view size for the cluster (small populations want small l1).
  std::size_t view_size = 8;
  /// Per-leg reply budget before the initiator declares a pull timeout.
  std::chrono::milliseconds reply_timeout{1500};
  std::uint64_t nonce_seed = 0;  ///< pins link tokens for reproducible tests
  /// false = plaintext node links (framing-only mode, for ablation).
  bool encrypt = true;
};

class LoopbackCluster {
 public:
  explicit LoopbackCluster(ClusterConfig config);
  ~LoopbackCluster();

  /// Binds every endpoint, starts every bus, distributes the address book,
  /// and bootstraps each node with a ring neighbourhood (successor + one) —
  /// convergence then demonstrates dissemination, not bootstrap knowledge.
  void start();

  /// Drives `count` full rounds (blocking).
  void run_rounds(std::uint64_t count);

  /// Distinct peers currently in node `i`'s dynamic view.
  [[nodiscard]] std::vector<NodeId> view_of(std::size_t i) const;
  [[nodiscard]] std::size_t size() const { return endpoints_.size(); }
  [[nodiscard]] BusStats bus_stats(std::size_t i) const;
  [[nodiscard]] std::uint64_t pulls_completed() const { return pulls_completed_; }
  [[nodiscard]] std::uint64_t pulls_timed_out() const { return pulls_timed_out_; }

  /// Drains every bus and joins. Idempotent.
  void stop();

 private:
  struct Endpoint {
    NodeId id{0};
    std::uint16_t port = 0;
    std::unique_ptr<wire::LinkTable> links;
    std::unique_ptr<brahms::BrahmsNode> node;
    std::unique_ptr<Bus> bus;

    mutable std::mutex node_mu;   // guards *node (driver + bus thread)
    std::mutex pull_mu;           // guards the pending-pull slot below
    std::condition_variable pull_cv;
    std::optional<NodeId> awaiting_reply_from;
    std::optional<wire::PullReply> pending_reply;
  };

  void on_message(Endpoint& ep, const Peer& from, std::vector<std::uint8_t> payload);
  void run_exchange(Endpoint& ep, NodeId target);

  ClusterConfig config_;
  std::unique_ptr<core::NodeFactory> factory_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::uint64_t round_ = 0;
  std::uint64_t pulls_completed_ = 0;
  std::uint64_t pulls_timed_out_ = 0;
  bool started_ = false;
};

}  // namespace raptee::net
