#include "net/frame.hpp"

#include <cstring>

namespace raptee::net {

void append_frame(std::vector<std::uint8_t>& out, const std::uint8_t* payload,
                  std::size_t len, std::size_t max_frame) {
  if (len > max_frame) {
    throw FrameError("frame payload of " + std::to_string(len) +
                     " bytes exceeds the " + std::to_string(max_frame) + "-byte cap");
  }
  const auto n = static_cast<std::uint32_t>(len);
  out.push_back(static_cast<std::uint8_t>(n));
  out.push_back(static_cast<std::uint8_t>(n >> 8));
  out.push_back(static_cast<std::uint8_t>(n >> 16));
  out.push_back(static_cast<std::uint8_t>(n >> 24));
  out.insert(out.end(), payload, payload + len);
}

void FrameSplitter::feed(const std::uint8_t* data, std::size_t len) {
  // Compact once the consumed prefix dominates the buffer, so a long-lived
  // connection doesn't grow its buffer without bound while staying O(1)
  // amortized per byte.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

bool FrameSplitter::next(std::vector<std::uint8_t>& payload) {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeader) return false;  // length prefix itself truncated
  const std::uint8_t* p = buf_.data() + pos_;
  const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                            (static_cast<std::uint32_t>(p[1]) << 8) |
                            (static_cast<std::uint32_t>(p[2]) << 16) |
                            (static_cast<std::uint32_t>(p[3]) << 24);
  if (len > max_frame_) {
    throw FrameError("incoming frame length " + std::to_string(len) +
                     " exceeds the " + std::to_string(max_frame_) + "-byte cap");
  }
  if (avail < kFrameHeader + len) return false;  // payload still in flight
  payload.clear();
  payload.insert(payload.end(), p + kFrameHeader, p + kFrameHeader + len);
  pos_ += kFrameHeader + len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return true;
}

}  // namespace raptee::net
