// Length-prefixed framing for the socket transport.
//
// A TCP stream has no message boundaries; the bus restores them with the
// smallest possible envelope: a 4-byte little-endian payload length followed
// by the payload bytes. The payload is carried UNCHANGED — for node links it
// is exactly the wire::LinkCipher frame (seq || ciphertext || tag) sealed
// over the wire:: codec bytes the simulator produces, so the transport adds
// no serialization of its own on top of the existing wire format.
// Little-endian matches the wire:: codec convention (buffer.hpp).
//
// FrameSplitter is the receive half: feed() accepts whatever byte slices
// the kernel hands you — a frame chopped at any split point, several frames
// coalesced into one read, a length prefix truncated mid-u32 — and next()
// yields complete payloads in order. A length prefix exceeding `max_frame`
// is unrecoverable (the stream offset is poisoned) and throws FrameError;
// the connection must be torn down.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace raptee::net {

class FrameError : public std::runtime_error {
 public:
  explicit FrameError(const std::string& what) : std::runtime_error(what) {}
};

/// Frames larger than this are rejected on both send and receive: a length
/// bomb from a Byzantine peer must not allocate gigabytes. Generous for the
/// protocol's largest leg (a PullReply view of a million-node population is
/// ~4 MB < 16 MB).
inline constexpr std::size_t kMaxFrame = 16u << 20;

/// Bytes of the length prefix.
inline constexpr std::size_t kFrameHeader = 4;

/// Appends `len` as a 4-byte little-endian prefix followed by the payload.
/// Throws FrameError if `len` exceeds `max_frame`.
void append_frame(std::vector<std::uint8_t>& out, const std::uint8_t* payload,
                  std::size_t len, std::size_t max_frame = kMaxFrame);

/// Incremental frame reassembly over arbitrary byte-slice boundaries.
class FrameSplitter {
 public:
  explicit FrameSplitter(std::size_t max_frame = kMaxFrame) : max_frame_(max_frame) {}

  /// Buffers `len` more stream bytes.
  void feed(const std::uint8_t* data, std::size_t len);

  /// Moves the next complete payload into `payload` (clearing it first) and
  /// returns true; false when no complete frame is buffered. Throws
  /// FrameError on an oversized length prefix — the stream is then
  /// unusable, feed()/next() must not be called again.
  [[nodiscard]] bool next(std::vector<std::uint8_t>& payload);

  /// Bytes buffered but not yet consumed by next() (a truncated length
  /// prefix or partial frame counts; zero means the stream is on a frame
  /// boundary).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_frame_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_, compacted lazily
};

}  // namespace raptee::net
