#include "net/service.hpp"

#include <algorithm>
#include <utility>

#include "brahms/node.hpp"
#include "core/node_factory.hpp"
#include "obs/timer.hpp"
#include "wire/buffer.hpp"

namespace raptee::net {

namespace {

constexpr std::uint8_t kKindRequest = 1;
constexpr std::uint8_t kKindReply = 2;

}  // namespace

std::vector<std::uint8_t> encode_sample_request(const SampleRequest& req) {
  wire::Writer w;
  w.u8(kKindRequest);
  w.u64(req.tag);
  w.u16(req.count);
  return w.take();
}

std::vector<std::uint8_t> encode_sample_reply(const SampleReply& reply) {
  wire::Writer w;
  w.u8(kKindReply);
  w.u64(reply.tag);
  w.u64(reply.round);
  w.node_ids(reply.samples);
  return w.take();
}

std::optional<SampleRequest> decode_sample_request(const std::uint8_t* data,
                                                   std::size_t len) {
  try {
    wire::Reader r(data, len);
    if (r.u8() != kKindRequest) return std::nullopt;
    SampleRequest req;
    req.tag = r.u64();
    req.count = r.u16();
    r.expect_done();
    return req;
  } catch (const wire::WireError&) {
    return std::nullopt;
  }
}

std::optional<SampleReply> decode_sample_reply(const std::uint8_t* data,
                                               std::size_t len) {
  try {
    wire::Reader r(data, len);
    if (r.u8() != kKindReply) return std::nullopt;
    SampleReply reply;
    reply.tag = r.u64();
    reply.round = r.u64();
    reply.samples = r.node_ids(kMaxSamplesPerRequest);
    r.expect_done();
    return reply;
  } catch (const wire::WireError&) {
    return std::nullopt;
  }
}

ServiceDaemon::ServiceDaemon(DaemonConfig config)
    : config_(config), sample_rng_(mix64(config.seed, 0x53414D50)) {
  obs::Registry& reg = obs::Registry::global();
  served_metric_ = &reg.counter("service.requests_served");
  rejected_metric_ = &reg.counter("service.requests_rejected");
  rounds_metric_ = &reg.counter("service.rounds_stepped");
  sample_us_ = &reg.histogram("service.sample_us");
}

ServiceDaemon::~ServiceDaemon() { stop(); }

std::uint16_t ServiceDaemon::start() {
  RAPTEE_REQUIRE(!started_, "ServiceDaemon::start called twice");
  started_ = true;

  // The embedded population: plain honest RAPTEE nodes, engine defaults
  // (the service's product is the sampler output, not the wire fidelity —
  // the socket path has its own sealed tests).
  sim::EngineConfig ec;
  ec.seed = config_.seed;
  engine_ = std::make_unique<sim::Engine>(ec);
  core::NodeFactory factory(config_.seed, brahms::AuthMode::kFingerprint);
  brahms::BrahmsConfig nc;
  nc.params.l1 = config_.view_size;
  nc.params.l2 = config_.view_size;
  nc.params.validate();
  for (std::size_t i = 0; i < config_.population; ++i) {
    engine_->add_node(factory.make_honest(NodeId{static_cast<std::uint32_t>(i)},
                                          nc, engine_->aliveness_probe()),
                      NodeKind::kHonest);
  }
  engine_->bootstrap_uniform(std::min(config_.view_size, config_.population - 1));
  engine_->run(config_.warmup_rounds);
  rounds_.store(config_.warmup_rounds, std::memory_order_relaxed);
  refresh_snapshot();

  BusConfig bc;
  bc.self = NodeId{0};
  bc.role = PeerRole::kNode;  // the daemon is an endpoint; clients dial in
  bc.on_message = [this](const Peer& peer, std::vector<std::uint8_t> payload) {
    on_frame(peer, std::move(payload));
  };
  bus_ = std::make_unique<Bus>(std::move(bc));
  const std::uint16_t port = bus_->listen(config_.port);
  bus_->start();

  // Release pairs with step_loop()'s acquire load: everything built above
  // (engine_, bus_, snapshot) is visible to the stepper before it runs.
  running_.store(true, std::memory_order_release);
  stepper_ = std::thread([this] { step_loop(); });
  return port;
}

void ServiceDaemon::step_loop() {
  // Acquire pairs with start()'s release store — see above.
  while (running_.load(std::memory_order_acquire)) {
    engine_->step();
    rounds_.fetch_add(1, std::memory_order_relaxed);
    rounds_metric_->add(1);
    refresh_snapshot();
    std::this_thread::sleep_for(config_.step_interval);
  }
}

void ServiceDaemon::refresh_snapshot() {
  // Node 0 is the service node: its l2 sample list is the peer-sampling
  // product. Fall back to its dynamic view while samplers still warm up.
  auto& node = dynamic_cast<brahms::BrahmsNode&>(engine_->node(NodeId{0}));
  std::vector<NodeId> fresh = node.sample_list();
  std::erase_if(fresh, [](NodeId id) { return id.value == 0; });
  if (fresh.empty()) fresh = node.current_view();
  const std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(fresh);
  snapshot_round_ = engine_->now();
}

void ServiceDaemon::on_frame(const Peer& peer, std::vector<std::uint8_t> payload) {
  const obs::ScopedTimer latency(sample_us_);
  const auto req = decode_sample_request(payload.data(), payload.size());
  if (!req || req->count == 0 || req->count > kMaxSamplesPerRequest) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    rejected_metric_->add(1);
    return;  // malformed or abusive: drop, never answer
  }
  SampleReply reply;
  reply.tag = req->tag;
  {
    const std::lock_guard<std::mutex> lock(snapshot_mu_);
    reply.round = snapshot_round_;
    if (!snapshot_.empty()) {
      reply.samples.reserve(req->count);
      for (std::uint16_t i = 0; i < req->count; ++i) {
        // With replacement: each answer is an independent uniform sample,
        // exactly the peer-sampling service contract.
        reply.samples.push_back(
            snapshot_[sample_rng_.next() % snapshot_.size()]);
      }
    }
  }
  bus_->reply(peer.conn, encode_sample_reply(reply));
  served_.fetch_add(1, std::memory_order_relaxed);
  served_metric_->add(1);
}

void ServiceDaemon::stop() {
  if (!started_) return;
  // acq_rel: the winning stop() both observes the stepper's last round and
  // publishes the false before join(); a racing second stop() sees false.
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    stepper_.join();
  }
  if (bus_) bus_->drain_and_stop(config_.drain);
}

}  // namespace raptee::net
