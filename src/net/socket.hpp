// POSIX TCP primitives for the loopback transport: an owning file
// descriptor and the few socket operations the bus needs (listen, connect,
// non-blocking mode, Nagle off). Everything binds to 127.0.0.1 only — the
// transport exists to run many RAPTEE nodes and service clients on one
// machine, not to expose an unauthenticated port to a network.
//
// Error reporting: constructor-style helpers throw NetError (with errno
// text); per-call I/O helpers return counts/optionals so the event loop can
// treat EAGAIN and peer resets as ordinary control flow.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace raptee::net {

/// Thrown on unrecoverable socket-setup failures (bind, listen, fcntl...).
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// Owning file descriptor: closes on destruction, move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// Listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral port).
/// Returns the listening socket (non-blocking, SO_REUSEADDR) and the bound
/// port. Throws NetError on failure.
[[nodiscard]] std::pair<Fd, std::uint16_t> listen_loopback(std::uint16_t port,
                                                           int backlog = 128);

/// Starts a non-blocking connect to 127.0.0.1:`port`. Returns the socket;
/// `*in_progress` reports whether the connect is still pending (EINPROGRESS
/// — wait for writability, then check connect_result). Throws NetError only
/// on socket-creation failure; a refused connection surfaces through
/// connect_result so callers can retry with backoff.
[[nodiscard]] Fd connect_loopback(std::uint16_t port, bool* in_progress);

/// Resolves a pending non-blocking connect: 0 on success, else the errno.
[[nodiscard]] int connect_result(int fd);

/// Accepts one pending connection (non-blocking); nullopt on EAGAIN.
/// Accepted sockets are returned non-blocking with TCP_NODELAY set.
[[nodiscard]] std::optional<Fd> accept_connection(int listen_fd);

/// Sets O_NONBLOCK; throws NetError on failure.
void set_nonblocking(int fd);
/// Disables Nagle (request/response latency matters more than packet
/// coalescing on loopback); best effort.
void set_nodelay(int fd);

/// read(2) wrapper: >0 bytes read, 0 on orderly EOF, -1 on EAGAIN,
/// -2 on a hard error (connection must be torn down).
[[nodiscard]] long read_some(int fd, std::uint8_t* buf, std::size_t cap);
/// write(2) wrapper with the same convention (-1 EAGAIN, -2 hard error).
[[nodiscard]] long write_some(int fd, const std::uint8_t* buf, std::size_t len);

}  // namespace raptee::net
