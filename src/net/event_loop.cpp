#include "net/event_loop.hpp"

#include <unistd.h>

#include <utility>

#if defined(__linux__)
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

#include "common/assert.hpp"
#include "obs/timer.hpp"

namespace raptee::net {

namespace {

Fd make_pipe_end(int fd) {
  set_nonblocking(fd);
  return Fd(fd);
}

}  // namespace

EventLoop::EventLoop() {
  int ends[2];
  if (::pipe(ends) != 0) throw NetError("pipe(wakeup) failed");
  wake_read_ = make_pipe_end(ends[0]);
  wake_write_ = make_pipe_end(ends[1]);
#if defined(__linux__)
  epoll_ = Fd(::epoll_create1(0));
  if (!epoll_.valid()) throw NetError("epoll_create1 failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_read_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wake_read_.get(), &ev) != 0) {
    throw NetError("epoll_ctl(wakeup) failed");
  }
#endif
}

EventLoop::~EventLoop() = default;

void EventLoop::add_fd(int fd, std::uint32_t interest, IoHandler handler) {
  RAPTEE_ASSERT_MSG(!fds_.contains(fd), "fd " << fd << " registered twice");
  fds_.emplace(fd, FdEntry{interest, std::move(handler)});
#if defined(__linux__)
  epoll_event ev{};
  ev.events = ((interest & kReadable) ? EPOLLIN : 0u) |
              ((interest & kWritable) ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    fds_.erase(fd);
    throw NetError("epoll_ctl(ADD) failed");
  }
#endif
}

void EventLoop::set_interest(int fd, std::uint32_t interest) {
  const auto it = fds_.find(fd);
  RAPTEE_ASSERT_MSG(it != fds_.end(), "set_interest on unregistered fd " << fd);
  it->second.interest = interest;
#if defined(__linux__)
  epoll_event ev{};
  ev.events = ((interest & kReadable) ? EPOLLIN : 0u) |
              ((interest & kWritable) ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw NetError("epoll_ctl(MOD) failed");
  }
#endif
}

void EventLoop::remove_fd(int fd) {
  if (fds_.erase(fd) == 0) return;
#if defined(__linux__)
  (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
#endif
}

EventLoop::TimerId EventLoop::run_after(std::chrono::milliseconds delay,
                                        std::function<void()> fn) {
  const TimerId id = next_timer_++;
  timers_.push(Timer{std::chrono::steady_clock::now() + delay, id});
  timer_fns_.emplace(id, std::move(fn));
  return id;
}

void EventLoop::cancel_timer(TimerId id) { timer_fns_.erase(id); }

void EventLoop::post(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

void EventLoop::stop() {
  {
    const std::lock_guard<std::mutex> lock(post_mu_);
    stop_requested_ = true;
  }
  wake();
}

void EventLoop::wake() {
  const std::uint8_t byte = 1;
  (void)write_some(wake_write_.get(), &byte, 1);  // EAGAIN = already pending
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    const std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

int EventLoop::fire_due_timers() {
  const auto now = std::chrono::steady_clock::now();
  while (!timers_.empty()) {
    const Timer top = timers_.top();
    const auto it = timer_fns_.find(top.id);
    if (it == timer_fns_.end()) {  // cancelled
      timers_.pop();
      continue;
    }
    if (top.deadline > now) {
      const auto wait = std::chrono::ceil<std::chrono::milliseconds>(top.deadline - now);
      return static_cast<int>(std::min<std::int64_t>(wait.count(), 60'000));
    }
    timers_.pop();
    auto fn = std::move(it->second);
    timer_fns_.erase(it);
    if (profile_timer_ != nullptr) {
      const obs::ScopedTimer t(profile_timer_);
      fn();
    } else {
      fn();
    }
  }
  return -1;
}

void EventLoop::dispatch(int fd, std::uint32_t events) {
  // Look the entry up at delivery time: an earlier callback in this pass
  // may have removed (or replaced) this fd.
  const auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  // Copying the handler keeps it alive even if the callback removes the fd.
  const IoHandler handler = it->second.handler;
  if (profile_dispatch_ != nullptr) {
    const obs::ScopedTimer t(profile_dispatch_);
    handler(events);
  } else {
    handler(events);
  }
}

void EventLoop::poll_once(int timeout_ms) {
#if defined(__linux__)
  epoll_event events[64];
  const int n = ::epoll_wait(epoll_.get(), events, 64, timeout_ms);
  ready_.clear();
  for (int i = 0; i < n; ++i) {
    if (events[i].data.fd == wake_read_.get()) {
      std::uint8_t drain[64];
      while (read_some(wake_read_.get(), drain, sizeof drain) > 0) {
      }
      continue;
    }
    std::uint32_t bits = 0;
    if (events[i].events & EPOLLIN) bits |= kReadable;
    if (events[i].events & EPOLLOUT) bits |= kWritable;
    if (events[i].events & (EPOLLERR | EPOLLHUP)) bits |= kError;
    const int ready_fd = events[i].data.fd;  // copy out of the packed union
    ready_.emplace_back(ready_fd, bits);
  }
#else
  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size() + 1);
  pfds.push_back(pollfd{wake_read_.get(), POLLIN, 0});
  // raptee-lint: allow(no-unordered-iteration) poll registration order only affects same-pass dispatch order of ready fds, which the epoll path leaves to the kernel anyway; the socket layer is outside the deterministic core
  for (const auto& [fd, entry] : fds_) {
    short mask = 0;
    if (entry.interest & kReadable) mask |= POLLIN;
    if (entry.interest & kWritable) mask |= POLLOUT;
    pfds.push_back(pollfd{fd, mask, 0});
  }
  const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  ready_.clear();
  if (n > 0) {
    if (pfds[0].revents & POLLIN) {
      std::uint8_t drain[64];
      while (read_some(wake_read_.get(), drain, sizeof drain) > 0) {
      }
    }
    for (std::size_t i = 1; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      std::uint32_t bits = 0;
      if (pfds[i].revents & POLLIN) bits |= kReadable;
      if (pfds[i].revents & POLLOUT) bits |= kWritable;
      if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) bits |= kError;
      ready_.emplace_back(pfds[i].fd, bits);
    }
  }
#endif
  for (const auto& [fd, bits] : ready_) dispatch(fd, bits);
}

void EventLoop::run() {
  loop_thread_ = std::this_thread::get_id();
  while (true) {
    {
      const std::lock_guard<std::mutex> lock(post_mu_);
      if (stop_requested_) {
        stop_requested_ = false;
        return;
      }
    }
    drain_posted();
    const int timeout = fire_due_timers();
    poll_once(timeout);
  }
}

}  // namespace raptee::net
