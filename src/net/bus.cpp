#include "net/bus.hpp"

#include <algorithm>
#include <random>
#include <utility>

#include "common/assert.hpp"
#include "obs/timer.hpp"
#include "wire/buffer.hpp"

namespace raptee::net {

std::vector<std::uint8_t> encode_hello(NodeId self, PeerRole role,
                                       std::uint64_t nonce) {
  wire::Writer w;
  w.u32(kHelloMagic);
  w.u8(kHelloVersion);
  w.u8(static_cast<std::uint8_t>(role));
  w.node_id(self);
  w.u64(nonce);
  return w.take();
}

namespace {

/// Order-sensitive nonce mix (initiator first): both endpoints of one
/// connection compute the same token from the same two HELLO nonces.
std::uint64_t link_token_of(std::uint64_t initiator_nonce,
                            std::uint64_t acceptor_nonce) {
  std::uint64_t token = initiator_nonce;
  token ^= acceptor_nonce + 0x9E3779B97F4A7C15ULL + (token << 6) + (token >> 2);
  return token;
}

}  // namespace

Bus::Bus(BusConfig config) : config_(std::move(config)) {
  if (config_.nonce_seed != 0) {
    nonce_base_ = config_.nonce_seed;
  } else {
    std::random_device rd;
    nonce_base_ = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }
  obs::Registry& reg = obs::Registry::global();
  metrics_.frames_sent = &reg.counter("bus.frames_sent");
  metrics_.frames_received = &reg.counter("bus.frames_received");
  metrics_.bytes_sent = &reg.counter("bus.bytes_sent");
  metrics_.bytes_received = &reg.counter("bus.bytes_received");
  metrics_.accepted = &reg.counter("bus.accepted");
  metrics_.dialed = &reg.counter("bus.dialed");
  metrics_.dial_retries = &reg.counter("bus.dial_retries");
  metrics_.teardowns = &reg.counter("bus.teardowns");
  metrics_.open_failures = &reg.counter("bus.open_failures");
  metrics_.handshake_failures = &reg.counter("bus.handshake_failures");
  metrics_.flush_us = &reg.histogram("bus.flush_us");
  // Per-callback wall time of the loop thread (dispatches and timers) —
  // safe to arm here: the loop thread starts in start().
  loop_.set_profile(&reg.histogram("bus.dispatch_us"),
                    &reg.histogram("bus.timer_us"));
}

Bus::~Bus() { stop(); }

std::uint16_t Bus::listen(std::uint16_t port) {
  RAPTEE_REQUIRE(!started_, "Bus::listen must be called before start()");
  auto [fd, bound] = listen_loopback(port);
  listen_fd_ = std::move(fd);
  listen_port_ = bound;
  return bound;
}

void Bus::start() {
  const std::lock_guard<std::mutex> lock(start_mu_);
  if (started_) return;
  started_ = true;
  loop_.post([this] {
    register_listener();
    if (config_.idle_timeout.count() > 0) sweep_idle();
  });
  thread_ = std::thread([this] { loop_.run(); });
}

void Bus::register_listener() {
  if (!listen_fd_.valid()) return;
  loop_.add_fd(listen_fd_.get(), EventLoop::kReadable,
               [this](std::uint32_t) { accept_ready(); });
}

void Bus::accept_ready() {
  while (true) {
    auto fd = accept_connection(listen_fd_.get());
    if (!fd) return;
    if (draining_) continue;  // accepted-but-draining: drop immediately
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.accepted;
    }
    metrics_.accepted->add(1);
    Connection& conn = adopt_connection(std::move(*fd), /*inbound=*/true);
    send_hello(conn);
  }
}

Bus::Connection& Bus::adopt_connection(Fd fd, bool inbound) {
  auto conn = std::make_unique<Connection>();
  conn->id = next_conn_++;
  conn->fd = std::move(fd);
  conn->inbound = inbound;
  conn->connecting = !inbound;
  conn->last_activity = std::chrono::steady_clock::now();
  const std::uint64_t id = conn->id;
  const int raw = conn->fd.get();
  Connection& ref = *conns_.emplace(id, std::move(conn)).first->second;
  loop_.add_fd(raw, inbound ? EventLoop::kReadable : EventLoop::kWritable,
               [this, id](std::uint32_t events) {
                 const auto it = conns_.find(id);
                 if (it == conns_.end()) return;
                 Connection& c = *it->second;
                 if (events & EventLoop::kError) {
                   if (c.connecting) {
                     const NodeId peer = c.peer;
                     teardown(id, "connect-error");
                     retry_dial(peer, "connect-error");
                   } else {
                     teardown(id, "socket-error");
                   }
                   return;
                 }
                 if (c.connecting) {
                   on_dial_writable(id, c.peer);
                   return;
                 }
                 if (events & EventLoop::kWritable) conn_writable(id);
                 if (conns_.contains(id) && (events & EventLoop::kReadable)) {
                   conn_readable(id);
                 }
               });
  return ref;
}

void Bus::send_hello(Connection& conn) {
  // Unique per connection: a redialed pair must never reuse a link token
  // (token collision would reuse a keystream from sequence zero).
  conn.local_nonce = nonce_base_ + conn.id;
  const std::vector<std::uint8_t> hello =
      encode_hello(config_.self, config_.role, conn.local_nonce);
  // The handshake always travels in the clear: sealing starts only once
  // both HELLOs have bound the connection to a link session.
  append_frame(conn.wbuf, hello.data(), hello.size(), config_.max_frame);
  flush_writes(conn);
}

void Bus::connect(NodeId peer, std::uint16_t port) {
  add_route(peer, port);
  loop_.post([this, peer] {
    PeerState& ps = peers_[peer.value];
    if (ps.conn != 0 || ps.dialing != 0) return;
    ps.backoff = config_.backoff_initial;
    ps.dial_deadline = std::chrono::steady_clock::now() + config_.connect_deadline;
    dial(peer);
  });
}

void Bus::add_route(NodeId peer, std::uint16_t port) {
  loop_.post([this, peer, port] { peers_[peer.value].port = port; });
  const std::lock_guard<std::mutex> lock(stats_mu_);
  routes_.insert(peer.value);
}

bool Bus::send(NodeId peer, std::vector<std::uint8_t> payload) {
  if (peer == config_.self) return false;
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    if (!routes_.contains(peer.value)) return false;
  }
  loop_.post([this, peer, payload = std::move(payload)]() mutable {
    PeerState& ps = peers_[peer.value];
    if (ps.conn != 0) {
      const auto it = conns_.find(ps.conn);
      if (it != conns_.end()) {
        enqueue_payload(*it->second, payload.data(), payload.size());
        return;
      }
      ps.conn = 0;
    }
    ps.pending.push_back(std::move(payload));
    if (ps.dialing == 0) {
      ps.backoff = config_.backoff_initial;
      ps.dial_deadline = std::chrono::steady_clock::now() + config_.connect_deadline;
      dial(peer);
    }
  });
  return true;
}

void Bus::reply(std::uint64_t conn, std::vector<std::uint8_t> payload) {
  loop_.post([this, conn, payload = std::move(payload)]() mutable {
    const auto it = conns_.find(conn);
    if (it == conns_.end() || !it->second->established) return;
    enqueue_payload(*it->second, payload.data(), payload.size());
  });
}

void Bus::dial(NodeId peer) {
  PeerState& ps = peers_[peer.value];
  if (ps.port == 0) {
    retry_dial(peer, "no-address");
    return;
  }
  bool in_progress = false;
  Fd fd;
  try {
    fd = connect_loopback(ps.port, &in_progress);
  } catch (const NetError&) {
    retry_dial(peer, "socket-failure");
    return;
  }
  if (!fd.valid()) {  // synchronous refusal (listener not up yet)
    retry_dial(peer, "refused");
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.dialed;
  }
  metrics_.dialed->add(1);
  Connection& conn = adopt_connection(std::move(fd), /*inbound=*/false);
  conn.peer = peer;
  ps.dialing = conn.id;
  if (!in_progress) {
    on_dial_writable(conn.id, peer);
  }
}

void Bus::retry_dial(NodeId peer, const char* why) {
  PeerState& ps = peers_[peer.value];
  ps.dialing = 0;
  if (ps.conn != 0) return;  // a competing inbound connection won meanwhile
  if (std::chrono::steady_clock::now() >= ps.dial_deadline) {
    ps.pending.clear();
    if (config_.on_peer_down) {
      config_.on_peer_down(Peer{peer, 0, PeerRole::kNode}, "connect-deadline");
    }
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.dial_retries;
  }
  metrics_.dial_retries->add(1);
  (void)why;
  const auto backoff = ps.backoff;
  ps.backoff = std::min(ps.backoff * 2, config_.backoff_max);
  loop_.run_after(backoff, [this, peer] {
    PeerState& ps2 = peers_[peer.value];
    if (ps2.conn != 0 || ps2.dialing != 0) return;
    dial(peer);
  });
}

void Bus::on_dial_writable(std::uint64_t conn_id, NodeId peer) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  const int err = connect_result(conn.fd.get());
  if (err != 0) {
    teardown(conn_id, "connect-refused");
    retry_dial(peer, "connect-refused");
    return;
  }
  conn.connecting = false;
  send_hello(conn);  // may tear the connection down on a write error
  const auto again = conns_.find(conn_id);
  if (again != conns_.end()) update_interest(*again->second);
}

void Bus::conn_readable(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  std::uint8_t buf[16384];
  while (true) {
    const long n = read_some(conn.fd.get(), buf, sizeof buf);
    if (n == -1) break;  // drained
    if (n == 0 || n == -2) {
      teardown(conn_id, n == 0 ? "peer-closed" : "read-error");
      return;
    }
    conn.last_activity = std::chrono::steady_clock::now();
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.bytes_received += static_cast<std::uint64_t>(n);
    }
    metrics_.bytes_received->add(static_cast<std::uint64_t>(n));
    try {
      conn.splitter.feed(buf, static_cast<std::size_t>(n));
      while (conn.splitter.next(conn.payload)) {
        handle_frame(conn);
        if (!conns_.contains(conn_id)) return;  // handler tore us down
      }
    } catch (const FrameError&) {
      teardown(conn_id, "oversized-frame");
      return;
    }
  }
}

void Bus::handle_frame(Connection& conn) {
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.frames_received;
  }
  metrics_.frames_received->add(1);
  if (!conn.hello_received) {
    handle_hello(conn);
    return;
  }
  if (!conn.established) {
    teardown(conn.id, "frame-before-establishment");
    return;
  }
  if (conn.plaintext) {
    if (config_.on_message) config_.on_message(peer_of(conn), std::move(conn.payload));
    return;
  }
  if (config_.frame_tap) config_.frame_tap(conn.peer, conn.payload);
  if (!conn.session->channel_from(conn.peer).open_into(
          conn.payload.data(), conn.payload.size(), conn.opened)) {
    // Integrity alarm: a deployed endpoint aborts the connection; both
    // sides invalidate the pair (teardown does) and the next send rekeys.
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.open_failures;
    }
    metrics_.open_failures->add(1);
    teardown(conn.id, "aead-failure");
    return;
  }
  if (config_.on_message) {
    config_.on_message(peer_of(conn),
                       std::vector<std::uint8_t>(conn.opened.begin(), conn.opened.end()));
  }
}

void Bus::handle_hello(Connection& conn) {
  NodeId peer{0};
  PeerRole role = PeerRole::kNode;
  std::uint64_t remote_nonce = 0;
  try {
    wire::Reader r(conn.payload.data(), conn.payload.size());
    const std::uint32_t magic = r.u32();
    const std::uint8_t version = r.u8();
    const std::uint8_t role_byte = r.u8();
    peer = r.node_id();
    remote_nonce = r.u64();
    r.expect_done();
    if (magic != kHelloMagic || version != kHelloVersion || role_byte > 1) {
      record_handshake_failure();
      teardown(conn.id, "bad-hello");
      return;
    }
    role = static_cast<PeerRole>(role_byte);
  } catch (const wire::WireError&) {
    record_handshake_failure();
    teardown(conn.id, "malformed-hello");
    return;
  }
  // An outbound dial knows who it expects: a different id means the address
  // book is wrong, not that a new peer appeared.
  if (!conn.inbound && peer != conn.peer) {
    record_handshake_failure();
    teardown(conn.id, "hello-id-mismatch");
    return;
  }
  conn.hello_received = true;
  conn.peer = peer;
  conn.peer_role = role;

  const bool node_link =
      config_.role == PeerRole::kNode && role == PeerRole::kNode;
  if (node_link) {
    PeerState& ps = peers_[peer.value];
    // Dedup: keep the connection initiated by the lower NodeId — a rule
    // both endpoints evaluate identically, so a simultaneous dial converges
    // on one stream. Same-direction duplicates (a redial racing a stale
    // connection) resolve to the newer one.
    const auto initiator = [&](const Connection& c) {
      return c.inbound ? c.peer : config_.self;
    };
    for (const std::uint64_t existing : {ps.conn, ps.dialing}) {
      if (existing == 0 || existing == conn.id) continue;
      const auto it = conns_.find(existing);
      if (it == conns_.end()) continue;
      Connection& old = *it->second;
      const bool keep_new = old.inbound == conn.inbound ||
                            initiator(conn).value < initiator(old).value;
      if (!keep_new) {
        teardown(conn.id, "duplicate-link");
        return;
      }
      teardown(existing, "superseded-link");
    }
    ps.conn = conn.id;
    if (ps.dialing == conn.id) ps.dialing = 0;
    conn.established = true;
    conn.plaintext = config_.links == nullptr;
    const std::uint64_t init_nonce = conn.inbound ? remote_nonce : conn.local_nonce;
    const std::uint64_t acc_nonce = conn.inbound ? conn.local_nonce : remote_nonce;
    conn.link_token = link_token_of(init_nonce, acc_nonce);
    if (config_.links != nullptr) {
      // The dispatcher binding: the session is derived from this stream's
      // token, so the two endpoints' independent tables agree on the keys
      // no matter how many competing connections either side churned
      // through before this one survived dedup.
      conn.session = &config_.links->establish(config_.self, peer, conn.link_token);
    }
    established_.fetch_add(1, std::memory_order_relaxed);
    if (config_.on_peer_up) config_.on_peer_up(peer_of(conn));
    const std::uint64_t id = conn.id;  // a write error may tear `conn` down
    while (!ps.pending.empty()) {
      const std::vector<std::uint8_t> payload = std::move(ps.pending.front());
      ps.pending.pop_front();
      const auto it = conns_.find(id);
      if (it == conns_.end()) return;
      enqueue_payload(*it->second, payload.data(), payload.size());
    }
    return;
  }
  // Client link (either side): plaintext service framing, keyed by
  // connection, never entered into the peer table.
  conn.established = true;
  conn.plaintext = true;
  established_.fetch_add(1, std::memory_order_relaxed);
  if (config_.on_peer_up) config_.on_peer_up(peer_of(conn));
}

void Bus::enqueue_payload(Connection& conn, const std::uint8_t* data,
                          std::size_t len) {
  const std::uint64_t id = conn.id;  // flush may tear `conn` down
  if (conn.plaintext) {
    append_frame(conn.wbuf, data, len, config_.max_frame);
  } else {
    conn.session->channel_from(config_.self).seal_into(data, len, seal_scratch_);
    append_frame(conn.wbuf, seal_scratch_.data(), seal_scratch_.size(),
                 config_.max_frame);
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.frames_sent;
  }
  metrics_.frames_sent->add(1);
  flush_writes(conn);
  const auto it = conns_.find(id);
  if (it != conns_.end()) update_interest(*it->second);
}

void Bus::flush_writes(Connection& conn) {
  const obs::ScopedTimer flush_timer(metrics_.flush_us);
  while (conn.wpos < conn.wbuf.size()) {
    const long n = write_some(conn.fd.get(), conn.wbuf.data() + conn.wpos,
                              conn.wbuf.size() - conn.wpos);
    if (n == -1) break;  // kernel buffer full; wait for writability
    if (n == -2) {
      teardown(conn.id, "write-error");
      return;
    }
    conn.wpos += static_cast<std::size_t>(n);
    conn.last_activity = std::chrono::steady_clock::now();
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.bytes_sent += static_cast<std::uint64_t>(n);
    }
    metrics_.bytes_sent->add(static_cast<std::uint64_t>(n));
  }
  if (conn.wpos == conn.wbuf.size()) {
    conn.wbuf.clear();
    conn.wpos = 0;
    if (conn.closing) {
      // Don't declare the connection drained while payloads are still
      // queued behind its handshake (they reach wbuf via handle_hello).
      const auto pit = peers_.find(conn.peer.value);
      const bool pending = pit != peers_.end() && !pit->second.pending.empty();
      if (!pending) teardown(conn.id, "drained");
    }
  } else if (conn.wpos >= conn.wbuf.size() / 2) {
    conn.wbuf.erase(conn.wbuf.begin(),
                    conn.wbuf.begin() + static_cast<std::ptrdiff_t>(conn.wpos));
    conn.wpos = 0;
  }
}

void Bus::update_interest(Connection& conn) {
  std::uint32_t interest = EventLoop::kReadable;
  if (conn.connecting || conn.wpos < conn.wbuf.size()) {
    interest |= EventLoop::kWritable;
  }
  loop_.set_interest(conn.fd.get(), interest);
}

void Bus::conn_writable(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  flush_writes(conn);
  if (conns_.contains(conn_id)) update_interest(conn);
}

void Bus::teardown(std::uint64_t conn_id, const char* reason) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  loop_.remove_fd(conn.fd.get());
  const bool was_established = conn.established;
  const Peer peer = peer_of(conn);
  if (was_established) established_.fetch_sub(1, std::memory_order_relaxed);
  if (conn.session != nullptr) {
    // Drop the session only if it is still ours: a stale connection
    // closing after its pair re-established must not kill the successor.
    config_.links->invalidate_session(config_.self, conn.peer, conn.session);
  }
  if (config_.role == PeerRole::kNode && conn.hello_received &&
      conn.peer_role == PeerRole::kNode) {
    const auto pit = peers_.find(conn.peer.value);
    if (pit != peers_.end()) {
      if (pit->second.conn == conn_id) pit->second.conn = 0;
      if (pit->second.dialing == conn_id) pit->second.dialing = 0;
    }
  } else if (!conn.inbound) {
    const auto pit = peers_.find(conn.peer.value);
    if (pit != peers_.end() && pit->second.dialing == conn_id) {
      pit->second.dialing = 0;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.teardowns;
  }
  metrics_.teardowns->add(1);
  conns_.erase(it);
  if (was_established && config_.on_peer_down) config_.on_peer_down(peer, reason);
}

void Bus::record_handshake_failure() {
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.handshake_failures;
  }
  metrics_.handshake_failures->add(1);
}

void Bus::sweep_idle() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> idle;
  // raptee-lint: allow(no-unordered-iteration) id collection only; sorted below before teardown
  for (const auto& [id, conn] : conns_) {
    const auto cutoff =
        conn->established ? config_.idle_timeout : config_.connect_deadline;
    if (cutoff.count() > 0 && now - conn->last_activity > cutoff) idle.push_back(id);
  }
  // Tear down in connection-id order so the close/log sequence is stable
  // rather than hash-table order.
  std::sort(idle.begin(), idle.end());
  for (const std::uint64_t id : idle) teardown(id, "idle");
  loop_.run_after(std::max(config_.idle_timeout / 2, std::chrono::milliseconds(1)),
                  [this] { sweep_idle(); });
}

void Bus::drain_and_stop(std::chrono::milliseconds deadline) {
  {
    const std::lock_guard<std::mutex> lock(start_mu_);
    if (!started_) return;
  }
  const auto until = std::chrono::steady_clock::now() + deadline;
  loop_.post([this, until] {
    draining_ = true;
    if (listen_fd_.valid()) {
      loop_.remove_fd(listen_fd_.get());
      listen_fd_.reset();
    }
    std::vector<std::uint64_t> ids;
    ids.reserve(conns_.size());
    // raptee-lint: allow(no-unordered-iteration) id collection only; sorted below before the drain pass
    for (const auto& [id, conn] : conns_) ids.push_back(id);
    // Drain in connection-id order: deterministic flush/close sequence.
    std::sort(ids.begin(), ids.end());
    for (const std::uint64_t id : ids) {
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Connection& conn = *it->second;
      // Payloads queued behind an in-flight handshake live in the peer's
      // pending deque, not the connection's write buffer yet — they count
      // as unflushed bytes for drain purposes.
      const auto pit = peers_.find(conn.peer.value);
      const bool pending = pit != peers_.end() && !pit->second.pending.empty();
      if (conn.wpos == conn.wbuf.size() && !pending) {
        teardown(id, "drain");
      } else {
        conn.closing = true;
      }
    }
    finish_drain(until);
  });
  thread_.join();
  const std::lock_guard<std::mutex> lock(start_mu_);
  started_ = false;
}

void Bus::finish_drain(std::chrono::steady_clock::time_point deadline) {
  if (conns_.empty() || std::chrono::steady_clock::now() >= deadline) {
    loop_.stop();
    return;
  }
  loop_.run_after(std::chrono::milliseconds(5),
                  [this, deadline] { finish_drain(deadline); });
}

void Bus::stop() {
  {
    const std::lock_guard<std::mutex> lock(start_mu_);
    if (!started_) return;
  }
  loop_.stop();
  thread_.join();
  const std::lock_guard<std::mutex> lock(start_mu_);
  started_ = false;
}

BusStats Bus::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace raptee::net
