#include "net/cluster.hpp"

#include <utility>

#include "common/assert.hpp"

namespace raptee::net {

LoopbackCluster::LoopbackCluster(ClusterConfig config) : config_(std::move(config)) {
  RAPTEE_REQUIRE(config_.nodes >= 2, "cluster needs at least 2 nodes");
}

LoopbackCluster::~LoopbackCluster() { stop(); }

void LoopbackCluster::start() {
  RAPTEE_REQUIRE(!started_, "LoopbackCluster::start called twice");
  started_ = true;
  factory_ = std::make_unique<core::NodeFactory>(config_.seed,
                                                 brahms::AuthMode::kFingerprint);
  // The deployment trust root: every endpoint derives its link secrets from
  // the same master key through its own independent LinkTable.
  const crypto::SymmetricKey master =
      crypto::Drbg(config_.seed, "cluster-link-master").generate_key();

  brahms::BrahmsConfig nc;
  nc.params.l1 = config_.view_size;
  nc.params.l2 = config_.view_size;
  nc.params.validate();

  endpoints_.reserve(config_.nodes);
  for (std::size_t i = 0; i < config_.nodes; ++i) {
    auto ep = std::make_unique<Endpoint>();
    ep->id = NodeId{static_cast<std::uint32_t>(i)};
    if (config_.encrypt) {
      ep->links = std::make_unique<wire::LinkTable>(master);
    }
    ep->node = factory_->make_honest(ep->id, nc);
    endpoints_.push_back(std::move(ep));
  }
  for (auto& owned : endpoints_) {
    Endpoint& ep = *owned;
    BusConfig bc;
    bc.self = ep.id;
    bc.role = PeerRole::kNode;
    bc.links = ep.links.get();
    bc.nonce_seed = config_.nonce_seed == 0
                        ? 0
                        : config_.nonce_seed + (ep.id.value << 20);
    bc.on_message = [this, &ep](const Peer& from, std::vector<std::uint8_t> payload) {
      on_message(ep, from, std::move(payload));
    };
    ep.bus = std::make_unique<Bus>(std::move(bc));
    ep.port = ep.bus->listen(0);
  }
  for (auto& owned : endpoints_) {
    Endpoint& ep = *owned;
    ep.bus->start();
    for (const auto& other : endpoints_) {
      if (other->id == ep.id) continue;
      ep.bus->add_route(other->id, other->port);
    }
  }
  // Ring bootstrap: node i knows only its two successors.
  const std::size_t n = endpoints_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<NodeId> ring = {endpoints_[(i + 1) % n]->id,
                                      endpoints_[(i + 2) % n]->id};
    const std::lock_guard<std::mutex> lock(endpoints_[i]->node_mu);
    endpoints_[i]->node->bootstrap(ring);
  }
}

void LoopbackCluster::on_message(Endpoint& ep, const Peer& from,
                                 std::vector<std::uint8_t> payload) {
  if (from.role != PeerRole::kNode) return;  // clients have no business here
  wire::Message msg;
  try {
    msg = wire::decode(payload.data(), payload.size());
  } catch (const wire::WireError&) {
    return;  // Byzantine bytes: drop, exactly the engine's posture
  }
  if (const auto* push = std::get_if<wire::PushMessage>(&msg)) {
    const std::lock_guard<std::mutex> lock(ep.node_mu);
    ep.node->on_push(*push);
    return;
  }
  if (const auto* request = std::get_if<wire::PullRequest>(&msg)) {
    wire::PullReply reply;
    {
      const std::lock_guard<std::mutex> lock(ep.node_mu);
      reply = ep.node->answer_pull(*request);
    }
    ep.bus->send(request->sender, wire::encode(wire::Message{std::move(reply)}));
    return;
  }
  if (auto* reply = std::get_if<wire::PullReply>(&msg)) {
    const std::lock_guard<std::mutex> lock(ep.pull_mu);
    if (ep.awaiting_reply_from && *ep.awaiting_reply_from == reply->sender) {
      ep.pending_reply = std::move(*reply);
      ep.pull_cv.notify_one();
    }
    return;  // unsolicited/late replies are dropped (timeout already fired)
  }
  if (const auto* confirm = std::get_if<wire::AuthConfirm>(&msg)) {
    std::optional<wire::SwapReply> swap;
    {
      const std::lock_guard<std::mutex> lock(ep.node_mu);
      swap = ep.node->process_confirm(*confirm);
    }
    if (swap) {
      ep.bus->send(confirm->sender, wire::encode(wire::Message{std::move(*swap)}));
    }
    return;
  }
  if (const auto* swap = std::get_if<wire::SwapReply>(&msg)) {
    const std::lock_guard<std::mutex> lock(ep.node_mu);
    ep.node->process_swap_reply(*swap);
    return;
  }
}

void LoopbackCluster::run_exchange(Endpoint& ep, NodeId target) {
  wire::PullRequest request;
  {
    const std::lock_guard<std::mutex> lock(ep.node_mu);
    request = ep.node->open_pull(target);
  }
  {
    const std::lock_guard<std::mutex> lock(ep.pull_mu);
    ep.awaiting_reply_from = target;
    ep.pending_reply.reset();
  }
  ep.bus->send(target, wire::encode(wire::Message{std::move(request)}));

  std::optional<wire::PullReply> reply;
  {
    std::unique_lock<std::mutex> lock(ep.pull_mu);
    ep.pull_cv.wait_for(lock, config_.reply_timeout,
                        [&] { return ep.pending_reply.has_value(); });
    reply = std::move(ep.pending_reply);
    ep.awaiting_reply_from.reset();
    ep.pending_reply.reset();
  }
  if (!reply) {
    ++pulls_timed_out_;
    const std::lock_guard<std::mutex> lock(ep.node_mu);
    ep.node->on_pull_timeout(target);
    return;
  }
  wire::AuthConfirm confirm;
  {
    const std::lock_guard<std::mutex> lock(ep.node_mu);
    confirm = ep.node->process_pull_reply(*reply);
  }
  ep.bus->send(target, wire::encode(wire::Message{std::move(confirm)}));
  ++pulls_completed_;
  // The responder's optional SwapReply closes asynchronously on our bus
  // thread (process_swap_reply in on_message) — exactly a deployed
  // initiator, which does not block its round on the trusted-swap tail.
}

void LoopbackCluster::run_rounds(std::uint64_t count) {
  for (std::uint64_t r = 0; r < count; ++r, ++round_) {
    for (auto& owned : endpoints_) {
      const std::lock_guard<std::mutex> lock(owned->node_mu);
      owned->node->begin_round(round_);
    }
    // Phase 2: push fan-out (fire and forget).
    for (auto& owned : endpoints_) {
      Endpoint& ep = *owned;
      std::vector<NodeId> targets;
      wire::PushMessage push{};
      {
        const std::lock_guard<std::mutex> lock(ep.node_mu);
        targets = ep.node->push_targets();
        push = ep.node->make_push();
      }
      const std::vector<std::uint8_t> bytes = wire::encode(wire::Message{push});
      for (const NodeId t : targets) {
        if (t == ep.id) continue;
        ep.bus->send(t, bytes);
      }
    }
    // Phase 3: pull exchanges, each a real five-leg socket round trip.
    for (auto& owned : endpoints_) {
      Endpoint& ep = *owned;
      std::vector<NodeId> targets;
      {
        const std::lock_guard<std::mutex> lock(ep.node_mu);
        targets = ep.node->pull_targets();
      }
      for (const NodeId t : targets) {
        if (t == ep.id) continue;
        run_exchange(ep, t);
      }
    }
    for (auto& owned : endpoints_) {
      const std::lock_guard<std::mutex> lock(owned->node_mu);
      owned->node->end_round(round_);
    }
  }
}

std::vector<NodeId> LoopbackCluster::view_of(std::size_t i) const {
  const Endpoint& ep = *endpoints_.at(i);
  const std::lock_guard<std::mutex> lock(ep.node_mu);
  return ep.node->current_view();
}

BusStats LoopbackCluster::bus_stats(std::size_t i) const {
  return endpoints_.at(i)->bus->stats();
}

void LoopbackCluster::stop() {
  for (auto& owned : endpoints_) {
    if (owned->bus) owned->bus->drain_and_stop(std::chrono::milliseconds(500));
  }
}

}  // namespace raptee::net
