// Dependency-free single-threaded async event loop.
//
// One loop drives every socket of a Bus: readiness callbacks per fd, a
// monotonic timer heap, and a cross-thread post() queue woken through a
// self-pipe. The backend is epoll(7) on Linux and poll(2) elsewhere — the
// interface is identical and deliberately tiny (level-triggered readiness,
// no ownership of fds).
//
// Threading contract:
//   * run() executes callbacks on the calling thread (the "loop thread");
//   * post() and stop() are safe from any thread;
//   * every other method (add_fd/set_interest/remove_fd/run_after/...)
//     must be called on the loop thread — post() a closure to get there.
//
// Reentrancy: a callback may add or remove any fd, including its own; the
// dispatch pass re-checks registration before each delivery so a handler
// removed earlier in the same pass is never invoked on a stale entry.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.hpp"
#include "obs/registry.hpp"

namespace raptee::net {

class EventLoop {
 public:
  /// Readiness bits passed to io handlers (a dispatch may combine them).
  static constexpr std::uint32_t kReadable = 1u;
  static constexpr std::uint32_t kWritable = 2u;
  /// Error/hangup: the fd should be torn down by its handler.
  static constexpr std::uint32_t kError = 4u;

  using IoHandler = std::function<void(std::uint32_t events)>;
  using TimerId = std::uint64_t;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for the readiness bits in `interest` (kReadable |
  /// kWritable). The loop never closes the fd.
  void add_fd(int fd, std::uint32_t interest, IoHandler handler);
  /// Replaces the interest set of a registered fd.
  void set_interest(int fd, std::uint32_t interest);
  void remove_fd(int fd);
  [[nodiscard]] std::size_t fd_count() const { return fds_.size(); }

  /// One-shot timer on the loop thread; returns an id for cancel_timer.
  TimerId run_after(std::chrono::milliseconds delay, std::function<void()> fn);
  void cancel_timer(TimerId id);

  /// Enqueues `fn` for execution on the loop thread (any thread; wakes a
  /// blocked run()).
  void post(std::function<void()> fn);

  /// Dispatches events until stop(). Records the caller as the loop thread.
  void run();
  /// Makes run() return after the current dispatch pass (any thread).
  void stop();

  [[nodiscard]] bool on_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_;
  }

  /// Opt-in profiling: per-callback wall time of io dispatches and timer
  /// firings, recorded into the given histograms (either may be null =
  /// that class of callback is not timed). Call before run() — the
  /// pointers are read unsynchronized on the loop thread.
  void set_profile(obs::Histogram* dispatch_us, obs::Histogram* timer_us) {
    profile_dispatch_ = dispatch_us;
    profile_timer_ = timer_us;
  }

 private:
  struct FdEntry {
    std::uint32_t interest = 0;
    IoHandler handler;
  };
  struct Timer {
    std::chrono::steady_clock::time_point deadline;
    TimerId id;
    // Min-heap by (deadline, id): equal deadlines fire in creation order.
    friend bool operator>(const Timer& a, const Timer& b) {
      return a.deadline != b.deadline ? a.deadline > b.deadline : a.id > b.id;
    }
  };

  void wake();
  void drain_posted();
  /// Fires due timers; returns the poll timeout until the next one (-1 =
  /// no timer armed).
  int fire_due_timers();
  void dispatch(int fd, std::uint32_t events);
  void poll_once(int timeout_ms);

  std::unordered_map<int, FdEntry> fds_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::unordered_map<TimerId, std::function<void()>> timer_fns_;  // absent = cancelled
  TimerId next_timer_ = 1;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
  bool stop_requested_ = false;  // guarded by post_mu_

  Fd wake_read_;
  Fd wake_write_;
  std::thread::id loop_thread_;
  obs::Histogram* profile_dispatch_ = nullptr;
  obs::Histogram* profile_timer_ = nullptr;

#if defined(__linux__)
  Fd epoll_;
#endif
  // Scratch for the dispatch pass (fd list snapshot — see reentrancy note).
  std::vector<std::pair<int, std::uint32_t>> ready_;
};

}  // namespace raptee::net
