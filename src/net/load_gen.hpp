// Load generator for the peer-sampling service: C concurrent closed-loop
// clients, each a thread driving one persistent connection — connect,
// HELLO, then request/reply ping-pong until the duration elapses. Every
// reply's latency is recorded; the report aggregates p50/p99 and
// requests/sec across all connections, feeding bench/service_load and the
// raptee_load CLI.
//
// Closed-loop (one in-flight request per connection) measures service
// latency under steady concurrency C, the standard service-bench shape:
// rps = completed / wall-time is throughput at that offered concurrency.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace raptee::net {

struct LoadConfig {
  std::uint16_t port = 0;               ///< daemon port (required)
  std::size_t connections = 8;          ///< concurrent closed-loop clients
  std::chrono::milliseconds duration{1000};
  std::uint16_t samples_per_request = 8;
  /// Per-reply wait budget; a connection that exceeds it records an error
  /// and reconnects.
  std::chrono::milliseconds reply_timeout{2000};
  std::uint64_t nonce_seed = 0;         ///< HELLO nonce base (0 = entropy)
};

struct LoadReport {
  std::uint64_t requests = 0;       ///< completed request/reply round trips
  std::uint64_t errors = 0;         ///< timeouts, resets, malformed replies
  std::uint64_t samples_received = 0;
  double duration_ms = 0.0;         ///< measured wall time
  double p50_us = 0.0;              ///< latency percentiles over all replies
  double p99_us = 0.0;
  double max_us = 0.0;
  double rps = 0.0;                 ///< requests / measured seconds
};

/// Runs the full load (blocks for ~duration). Throws NetError if no
/// connection can be established at all.
[[nodiscard]] LoadReport run_load(const LoadConfig& config);

}  // namespace raptee::net
