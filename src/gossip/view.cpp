#include "gossip/view.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace raptee::gossip {

std::vector<NodeId> PartialView::ids() const {
  std::vector<NodeId> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.id);
  return out;
}

std::size_t PartialView::copy_ids(NodeId* out, std::size_t cap) const {
  const std::size_t n = entries_.size() < cap ? entries_.size() : cap;
  for (std::size_t i = 0; i < n; ++i) out[i] = entries_[i].id;
  return n;
}

void PartialView::ids_into(std::vector<NodeId>& out) const {
  out.clear();
  if (out.capacity() < entries_.size()) out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.id);
}

bool PartialView::contains(NodeId id) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [id](const ViewEntry& e) { return e.id == id; });
}

void PartialView::age_all() {
  for (auto& e : entries_) ++e.age;
}

bool PartialView::insert(NodeId id, std::uint32_t age) {
  for (auto& e : entries_) {
    if (e.id == id) {
      e.age = std::min(e.age, age);
      return false;
    }
  }
  if (full()) return false;
  entries_.push_back({id, age});
  return true;
}

void PartialView::insert_replace_oldest(NodeId id, std::uint32_t age) {
  for (auto& e : entries_) {
    if (e.id == id) {
      e.age = std::min(e.age, age);
      return;
    }
  }
  if (!full()) {
    entries_.push_back({id, age});
    return;
  }
  auto victim = std::max_element(entries_.begin(), entries_.end(),
                                 [](const ViewEntry& a, const ViewEntry& b) {
                                   return a.age < b.age;
                                 });
  *victim = {id, age};
}

bool PartialView::remove(NodeId id) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [id](const ViewEntry& e) { return e.id == id; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

std::optional<ViewEntry> PartialView::oldest() const {
  if (entries_.empty()) return std::nullopt;
  return *std::max_element(entries_.begin(), entries_.end(),
                           [](const ViewEntry& a, const ViewEntry& b) {
                             return a.age < b.age;
                           });
}

std::optional<ViewEntry> PartialView::random(Rng& rng) const {
  if (entries_.empty()) return std::nullopt;
  return entries_[static_cast<std::size_t>(rng.below(entries_.size()))];
}

std::vector<NodeId> PartialView::sample_ids(Rng& rng, std::size_t k) const {
  std::vector<NodeId> out;
  const auto idx = rng.sample_indices(entries_.size(), k);
  out.reserve(idx.size());
  for (auto i : idx) out.push_back(entries_[i].id);
  return out;
}

NodeId PartialView::pick_id(Rng& rng) const {
  RAPTEE_ASSERT_MSG(!entries_.empty(), "pick from empty view");
  return entries_[static_cast<std::size_t>(rng.below(entries_.size()))].id;
}

void PartialView::replace_all(const std::vector<NodeId>& ids) {
  entries_.clear();
  for (NodeId id : ids) {
    if (entries_.size() >= capacity_) break;
    insert(id, 0);
  }
}

void PartialView::remove_oldest(std::size_t h) {
  h = std::min(h, entries_.size());
  for (std::size_t i = 0; i < h; ++i) {
    auto victim = std::max_element(entries_.begin(), entries_.end(),
                                   [](const ViewEntry& a, const ViewEntry& b) {
                                     return a.age < b.age;
                                   });
    entries_.erase(victim);
  }
}

void PartialView::remove_random(std::size_t s, Rng& rng) {
  s = std::min(s, entries_.size());
  for (std::size_t i = 0; i < s; ++i) {
    entries_.erase(entries_.begin() +
                   static_cast<std::ptrdiff_t>(rng.below(entries_.size())));
  }
}

void PartialView::remove_ids(const std::vector<NodeId>& ids) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&ids](const ViewEntry& e) {
                                  return std::find(ids.begin(), ids.end(), e.id) !=
                                         ids.end();
                                }),
                 entries_.end());
}

void PartialView::truncate_random(Rng& rng) {
  while (entries_.size() > capacity_) {
    entries_.erase(entries_.begin() +
                   static_cast<std::ptrdiff_t>(rng.below(entries_.size())));
  }
}

std::vector<ViewEntry> PartialView::select_to_send(Rng& rng, std::size_t k,
                                                   NodeId exclude) const {
  std::vector<const ViewEntry*> pool;
  pool.reserve(entries_.size());
  for (const auto& e : entries_) {
    if (e.id != exclude) pool.push_back(&e);
  }
  const auto idx = rng.sample_indices(pool.size(), k);
  std::vector<ViewEntry> out;
  out.reserve(idx.size());
  for (auto i : idx) out.push_back(*pool[i]);
  return out;
}

void PartialView::framework_merge(const std::vector<ViewEntry>& received, NodeId self,
                                  std::size_t h, std::size_t s,
                                  const std::vector<NodeId>& sent, Rng& rng) {
  // Append (dedup on id keeping the freshest copy, never include self).
  for (const ViewEntry& e : received) {
    if (e.id == self) continue;
    bool merged = false;
    for (auto& existing : entries_) {
      if (existing.id == e.id) {
        existing.age = std::min(existing.age, e.age);
        merged = true;
        break;
      }
    }
    if (!merged) entries_.push_back(e);
  }
  // Shrink back to capacity: H oldest first, then swapped-out entries, then
  // random — the canonical framework order (heal, swap, random).
  if (entries_.size() > capacity_) {
    remove_oldest(std::min(h, entries_.size() - capacity_));
  }
  if (entries_.size() > capacity_) {
    std::size_t to_drop = std::min(s, entries_.size() - capacity_);
    for (NodeId id : sent) {
      if (to_drop == 0) break;
      if (remove(id)) --to_drop;
    }
  }
  truncate_random(rng);
}

}  // namespace raptee::gossip
