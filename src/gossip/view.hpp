// Age-tagged partial view — the core data structure of gossip-based peer
// sampling (Jelasity et al., TOCS 2007). Entries are unique node
// descriptors carrying an age (rounds since the descriptor was created).
// Used by the generic framework, by Cyclon/Newscast, by Brahms' dynamic
// view V, and by RAPTEE's trusted exchanges.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace raptee::gossip {

struct ViewEntry {
  NodeId id;
  std::uint32_t age = 0;

  friend bool operator==(const ViewEntry&, const ViewEntry&) = default;
};

class PartialView {
 public:
  PartialView() = default;
  /// A fixed-capacity view preallocates its entry storage inline: the
  /// entry vector never reallocates during protocol operation, which keeps
  /// per-round view maintenance off the heap (the SoA engine slab depends
  /// on capacity() being a round-stable bound).
  explicit PartialView(std::size_t capacity) : capacity_(capacity) {
    entries_.reserve(capacity);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] bool full() const { return entries_.size() >= capacity_; }
  [[nodiscard]] const std::vector<ViewEntry>& entries() const { return entries_; }
  [[nodiscard]] std::vector<NodeId> ids() const;
  /// Allocation-free forms of ids() for hot paths: copy at most `cap` ids
  /// into `out`, returning the count written — the shape Engine::
  /// refresh_views consumes — or clear-and-fill a scratch vector.
  std::size_t copy_ids(NodeId* out, std::size_t cap) const;
  void ids_into(std::vector<NodeId>& out) const;
  [[nodiscard]] bool contains(NodeId id) const;

  /// Increments every entry's age (once per round).
  void age_all();

  /// Inserts a descriptor. On duplicate keeps the *fresher* age (framework
  /// rule: a newer descriptor supersedes an older one). Returns true if the
  /// id was not present. Fails (returns false) when full and absent —
  /// callers decide the replacement policy explicitly.
  bool insert(NodeId id, std::uint32_t age = 0);

  /// Inserts, evicting the oldest entry if full (Newscast-style).
  void insert_replace_oldest(NodeId id, std::uint32_t age = 0);

  bool remove(NodeId id);
  void clear() { entries_.clear(); }

  /// Entry with the maximal age (ties broken by position); nullopt if empty.
  [[nodiscard]] std::optional<ViewEntry> oldest() const;
  /// Uniformly random entry; nullopt if empty.
  [[nodiscard]] std::optional<ViewEntry> random(Rng& rng) const;
  /// `k` distinct ids drawn uniformly (all if k >= size).
  [[nodiscard]] std::vector<NodeId> sample_ids(Rng& rng, std::size_t k) const;
  /// One id drawn uniformly *with replacement semantics* (Brahms target
  /// selection); view must be non-empty.
  [[nodiscard]] NodeId pick_id(Rng& rng) const;

  /// Replaces the whole content with `ids` (ages reset to 0), truncating to
  /// capacity. Duplicate ids are collapsed. Brahms' end-of-round renewal.
  void replace_all(const std::vector<NodeId>& ids);

  /// Removes the H oldest entries (framework "heal" parameter); removes at
  /// most min(H, size) entries.
  void remove_oldest(std::size_t h);
  /// Removes `s` entries uniformly at random.
  void remove_random(std::size_t s, Rng& rng);
  /// Removes specific ids (used by swap: drop the descriptors we sent).
  void remove_ids(const std::vector<NodeId>& ids);
  /// Truncates to capacity by removing random entries.
  void truncate_random(Rng& rng);

  /// Framework buffer construction: up to `k` entries chosen uniformly,
  /// EXCLUDING `exclude` (the exchange partner). Entries are copied.
  [[nodiscard]] std::vector<ViewEntry> select_to_send(Rng& rng, std::size_t k,
                                                      NodeId exclude) const;

  /// Merge policy used by framework exchanges: append `received` skipping
  /// ids already present or equal to `self`, then shrink back to capacity
  /// with the (H, S) rules: first drop min(H, surplus) oldest, then
  /// min(S, surplus) of the entries we just sent (`sent`), then random.
  void framework_merge(const std::vector<ViewEntry>& received, NodeId self,
                       std::size_t h, std::size_t s, const std::vector<NodeId>& sent,
                       Rng& rng);

 private:
  std::size_t capacity_ = 0;
  std::vector<ViewEntry> entries_;
};

}  // namespace raptee::gossip
