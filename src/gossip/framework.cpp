#include "gossip/framework.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"

namespace raptee::gossip {

FrameworkParams newscast_params(std::size_t view_size) {
  FrameworkParams p;
  p.view_size = view_size;
  p.buffer_size = view_size / 2 + 1;
  p.peer_selection = PeerSelection::kRandom;
  p.propagation = ViewPropagation::kPushPull;
  p.heal = view_size;  // maximal healing: always prefer freshest descriptors
  p.swap = 0;
  return p;
}

FrameworkParams cyclon_params(std::size_t view_size, std::size_t shuffle_length) {
  if (shuffle_length == 0) shuffle_length = view_size / 2;
  FrameworkParams p;
  p.view_size = view_size;
  p.buffer_size = shuffle_length + 1;
  p.peer_selection = PeerSelection::kTail;
  p.propagation = ViewPropagation::kPushPull;
  p.heal = 0;
  p.swap = shuffle_length + 1;  // pure shuffle: drop what was sent
  return p;
}

FrameworkNode::FrameworkNode(NodeId self, FrameworkParams params, Rng rng)
    : self_(self), params_(params), rng_(rng), view_(params.view_size) {
  RAPTEE_REQUIRE(params.view_size >= 2, "view size must be at least 2");
  RAPTEE_REQUIRE(params.buffer_size >= 1, "buffer size must be at least 1");
}

void FrameworkNode::bootstrap(const std::vector<NodeId>& peers) {
  view_.clear();
  for (NodeId p : peers) {
    if (p == self_) continue;
    if (view_.full()) break;
    view_.insert(p, 0);
  }
}

std::optional<NodeId> FrameworkNode::select_partner() {
  if (view_.empty()) return std::nullopt;
  if (params_.peer_selection == PeerSelection::kTail) {
    return view_.oldest()->id;
  }
  return view_.random(rng_)->id;
}

std::vector<ViewEntry> FrameworkNode::make_buffer(NodeId partner) {
  std::vector<ViewEntry> buffer;
  buffer.push_back({self_, 0});
  const std::size_t extra = params_.buffer_size > 0 ? params_.buffer_size - 1 : 0;
  for (const ViewEntry& e : view_.select_to_send(rng_, extra, partner)) {
    buffer.push_back(e);
  }
  last_sent_.clear();
  for (const auto& e : buffer) last_sent_.push_back(e.id);
  return buffer;
}

void FrameworkNode::on_exchange(NodeId from, const std::vector<ViewEntry>& buffer,
                                std::vector<ViewEntry>* reply) {
  std::vector<NodeId> sent;
  if (reply != nullptr && params_.propagation == ViewPropagation::kPushPull) {
    // Build the reply *before* merging, per the framework's passive thread.
    reply->clear();
    reply->push_back({self_, 0});
    const std::size_t extra = params_.buffer_size > 0 ? params_.buffer_size - 1 : 0;
    for (const ViewEntry& e : view_.select_to_send(rng_, extra, from)) {
      reply->push_back(e);
    }
    for (const auto& e : *reply) sent.push_back(e.id);
  }
  merge(buffer, sent);
}

void FrameworkNode::on_reply(NodeId /*from*/, const std::vector<ViewEntry>& buffer) {
  merge(buffer, last_sent_);
}

void FrameworkNode::on_partner_timeout(NodeId partner) { view_.remove(partner); }

void FrameworkNode::next_round() { view_.age_all(); }

void FrameworkNode::merge(const std::vector<ViewEntry>& received,
                          const std::vector<NodeId>& sent) {
  view_.framework_merge(received, self_, params_.heal, params_.swap, sent, rng_);
}

FrameworkDriver::FrameworkDriver(FrameworkParams params, std::size_t n,
                                 std::uint64_t seed)
    : params_(params), rng_(seed) {
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.emplace_back(NodeId{static_cast<std::uint32_t>(i)}, params_,
                        rng_.fork(i + 1));
  }
}

void FrameworkDriver::bootstrap_uniform() {
  std::vector<NodeId> everyone;
  everyone.reserve(nodes_.size());
  for (const auto& n : nodes_) everyone.push_back(n.id());
  for (auto& n : nodes_) {
    std::vector<NodeId> candidates;
    candidates.reserve(everyone.size() - 1);
    for (NodeId id : everyone) {
      if (id != n.id()) candidates.push_back(id);
    }
    n.bootstrap(rng_.sample(candidates, params_.view_size));
  }
}

void FrameworkDriver::run_round() {
  std::vector<std::size_t> order(nodes_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng_.shuffle(order);
  for (std::size_t i : order) {
    FrameworkNode& active = nodes_[i];
    const auto partner_id = active.select_partner();
    if (!partner_id) continue;
    RAPTEE_ASSERT_MSG(partner_id->value < nodes_.size(), "partner out of range");
    FrameworkNode& passive = nodes_[partner_id->value];
    const auto buffer = active.make_buffer(*partner_id);
    std::vector<ViewEntry> reply;
    passive.on_exchange(active.id(), buffer, &reply);
    if (active.params().propagation == ViewPropagation::kPushPull) {
      active.on_reply(*partner_id, reply);
    }
  }
  for (auto& n : nodes_) n.next_round();
}

void FrameworkDriver::run(std::size_t rounds) {
  for (std::size_t i = 0; i < rounds; ++i) run_round();
}

std::vector<std::size_t> FrameworkDriver::indegrees() const {
  std::vector<std::size_t> in(nodes_.size(), 0);
  for (const auto& n : nodes_) {
    for (const auto& e : n.view().entries()) {
      RAPTEE_ASSERT(e.id.value < in.size());
      ++in[e.id.value];
    }
  }
  return in;
}

double FrameworkDriver::clustering_coefficient() const {
  // Local clustering per node over the undirected-ized view graph,
  // averaged. Views are small, so the O(c^2) neighbour check is fine.
  double total = 0.0;
  std::size_t counted = 0;
  std::vector<std::unordered_set<std::uint32_t>> adj(nodes_.size());
  for (const auto& n : nodes_) {
    for (const auto& e : n.view().entries()) {
      adj[n.id().value].insert(e.id.value);
      adj[e.id.value].insert(n.id().value);
    }
  }
  for (std::size_t i = 0; i < adj.size(); ++i) {
    const auto& nbrs = adj[i];
    if (nbrs.size() < 2) continue;
    std::size_t links = 0;
    for (auto a : nbrs) {
      for (auto b : nbrs) {
        if (a < b && adj[a].count(b)) ++links;
      }
    }
    const double possible =
        static_cast<double>(nbrs.size()) * (static_cast<double>(nbrs.size()) - 1) / 2.0;
    total += static_cast<double>(links) / possible;
    ++counted;
  }
  return counted ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace raptee::gossip
