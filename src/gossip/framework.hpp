// Generic gossip-based peer-sampling framework (Jelasity, Voulgaris,
// Guerraoui, Kermarrec, van Steen — ACM TOCS 2007).
//
// The framework is parameterized by:
//   * peer selection      — rand (uniform from view) or tail (oldest entry)
//   * view propagation    — push or push-pull
//   * view size c and exchange buffer size (self link + up to buffer-1
//     entries)
//   * H (heal)            — after a merge, drop up to H oldest surplus items
//   * S (swap)            — then drop up to S of the items just sent
//
// Known protocols are corner points: Newscast ≈ (rand, pushpull, H=c, S=0);
// Cyclon ≈ (tail, pushpull, H=0, S=c/2). RAPTEE's trusted communication
// (§II criteria 1–3) instantiates (tail/pull-partner, pushpull, swap-heavy)
// with "exchange half the view, initiator adds a self link".
//
// FrameworkNode is transport-agnostic: the caller (FrameworkDriver for
// standalone runs; RapteeNode for trusted exchanges) moves buffers between
// nodes. next_round()/age semantics follow the paper: descriptors age one
// unit per round; a node's own descriptor is sent with age 0.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "gossip/view.hpp"

namespace raptee::gossip {

enum class PeerSelection : std::uint8_t { kRandom, kTail };
enum class ViewPropagation : std::uint8_t { kPush, kPushPull };

struct FrameworkParams {
  std::size_t view_size = 20;       ///< c
  std::size_t buffer_size = 11;     ///< entries per exchange buffer (incl. self link)
  PeerSelection peer_selection = PeerSelection::kTail;
  ViewPropagation propagation = ViewPropagation::kPushPull;
  std::size_t heal = 0;             ///< H
  std::size_t swap = 0;             ///< S
};

/// Newscast instantiation: uniform partner, push-pull, maximal healing.
[[nodiscard]] FrameworkParams newscast_params(std::size_t view_size);

/// Cyclon instantiation: oldest partner, push-pull, pure shuffling.
/// `shuffle_length` is the classic Cyclon ℓ (defaults to c/2).
[[nodiscard]] FrameworkParams cyclon_params(std::size_t view_size,
                                            std::size_t shuffle_length = 0);

class FrameworkNode {
 public:
  FrameworkNode(NodeId self, FrameworkParams params, Rng rng);

  [[nodiscard]] NodeId id() const { return self_; }
  [[nodiscard]] const PartialView& view() const { return view_; }
  [[nodiscard]] const FrameworkParams& params() const { return params_; }

  void bootstrap(const std::vector<NodeId>& peers);

  /// Active thread, step 1: pick the exchange partner for this round.
  [[nodiscard]] std::optional<NodeId> select_partner();

  /// Active thread, step 2: build the buffer to send (self link age 0 plus
  /// up to buffer_size-1 entries, excluding the partner's own descriptor).
  /// Records what was sent for the later S-rule.
  [[nodiscard]] std::vector<ViewEntry> make_buffer(NodeId partner);

  /// Passive thread: integrate a received buffer; when push-pull, fills
  /// `reply` with this node's own buffer (built before the merge, per the
  /// framework pseudo-code).
  void on_exchange(NodeId from, const std::vector<ViewEntry>& buffer,
                   std::vector<ViewEntry>* reply);

  /// Active thread, step 3 (push-pull only): integrate the partner's reply.
  void on_reply(NodeId from, const std::vector<ViewEntry>& buffer);

  /// The partner did not answer: Cyclon-style, its descriptor is removed
  /// (it was the oldest — likely dead).
  void on_partner_timeout(NodeId partner);

  /// End of round: ages every descriptor.
  void next_round();

 private:
  void merge(const std::vector<ViewEntry>& received, const std::vector<NodeId>& sent);

  NodeId self_;
  FrameworkParams params_;
  Rng rng_;
  PartialView view_;
  std::vector<NodeId> last_sent_;
};

/// Drives a standalone population of FrameworkNodes round by round
/// (used by Cyclon/Newscast tests, the overlay example and micro-benches).
class FrameworkDriver {
 public:
  FrameworkDriver(FrameworkParams params, std::size_t n, std::uint64_t seed);

  /// Bootstraps every node with `view_size` uniform random peers.
  void bootstrap_uniform();
  void run_round();
  void run(std::size_t rounds);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] FrameworkNode& node(std::size_t i) { return nodes_[i]; }
  [[nodiscard]] const FrameworkNode& node(std::size_t i) const { return nodes_[i]; }

  /// In-degree of every node (how many views contain it) — the framework
  /// paper's primary balance metric.
  [[nodiscard]] std::vector<std::size_t> indegrees() const;
  /// Global clustering coefficient of the directed view graph, treating
  /// views as out-neighbour sets.
  [[nodiscard]] double clustering_coefficient() const;

 private:
  FrameworkParams params_;
  Rng rng_;
  std::vector<FrameworkNode> nodes_;
};

}  // namespace raptee::gossip
